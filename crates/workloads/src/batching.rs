//! Batching helpers: padding waste and TurboTransformers-style re-batching.

/// Fraction of `padded` token slots that are padding waste (0 when
/// nothing was processed). Shared by [`Batch`], the serving scheduler's
/// formed batches and the serving report so the metric cannot diverge.
pub fn padding_waste(real_tokens: usize, padded_tokens: usize) -> f64 {
    if padded_tokens == 0 {
        return 0.0;
    }
    1.0 - real_tokens as f64 / padded_tokens as f64
}

/// One padded batch of variable-length sequences (Figure 2c).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Real sequence lengths.
    pub lens: Vec<usize>,
    /// Length every sequence is padded to.
    pub max_len: usize,
}

/// The result of padding to a fixed length: the batch that fits plus the
/// token overflow that did not. Earlier versions silently truncated
/// over-long sequences; a serving queue must never drop real tokens, so the
/// remainder is returned explicitly and can be re-batched as follow-up
/// (continuation) sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitBatch {
    /// The batch holding the first `max_len` tokens of every sequence.
    pub batch: Batch,
    /// Leftover lengths, one entry per input sequence that exceeded
    /// `max_len`, in input order. Entries may themselves still exceed
    /// `max_len` (e.g. a `3×max_len` input leaves `2×max_len` here);
    /// [`Batch::split_to`] resolves them fully.
    pub overflow: Vec<usize>,
}

impl SplitBatch {
    /// Tokens that did not fit the batch (zero means nothing was cut).
    pub fn overflow_tokens(&self) -> usize {
        self.overflow.iter().sum()
    }

    /// True when every input sequence fit within `max_len`.
    pub fn is_complete(&self) -> bool {
        self.overflow.is_empty()
    }

    /// The overflow re-padded to the same truncation length, or `None`
    /// when nothing overflowed.
    pub fn follow_up(&self) -> Option<SplitBatch> {
        if self.overflow.is_empty() {
            None
        } else {
            Some(Batch::padded_to(self.overflow.clone(), self.batch.max_len))
        }
    }
}

impl Batch {
    /// Builds a batch padded to the longest sequence in it.
    pub fn padded_to_longest(lens: Vec<usize>) -> Self {
        let max_len = lens.iter().copied().max().unwrap_or(0);
        Batch { lens, max_len }
    }

    /// Builds a batch padded to a fixed truncation length, returning the
    /// overflow of sequences longer than `max_len` instead of silently
    /// dropping their tokens.
    ///
    /// # Panics
    ///
    /// Panics if `max_len` is zero (no tokens could ever fit).
    pub fn padded_to(lens: Vec<usize>, max_len: usize) -> SplitBatch {
        assert!(max_len > 0, "cannot pad to a zero-length batch");
        let overflow: Vec<usize> = lens
            .iter()
            .filter(|&&l| l > max_len)
            .map(|&l| l - max_len)
            .collect();
        let batch = Batch {
            lens: lens.into_iter().map(|l| l.min(max_len)).collect(),
            max_len,
        };
        SplitBatch { batch, overflow }
    }

    /// Splits sequences into as many `max_len`-padded batches as needed so
    /// every real token lands in exactly one batch, in order: batch `i+1`
    /// holds the continuations of batch `i`'s over-long sequences.
    pub fn split_to(lens: Vec<usize>, max_len: usize) -> Vec<Batch> {
        let mut out = Vec::new();
        let mut split = Batch::padded_to(lens, max_len);
        loop {
            let next = split.follow_up();
            out.push(split.batch);
            match next {
                Some(s) => split = s,
                None => break,
            }
        }
        out
    }

    /// Number of sequences.
    pub fn batch_size(&self) -> usize {
        self.lens.len()
    }

    /// Tokens after padding (`batch * max_len`).
    pub fn padded_tokens(&self) -> usize {
        self.lens.len() * self.max_len
    }

    /// Real (non-padding) tokens.
    pub fn real_tokens(&self) -> usize {
        self.lens.iter().sum()
    }

    /// Fraction of padded positions that are waste.
    pub fn padding_waste(&self) -> f64 {
        padding_waste(self.real_tokens(), self.padded_tokens())
    }

    /// Sum of squared *real* lengths — the attention-score work a
    /// padding-free implementation performs.
    pub fn sum_sq_real(&self) -> usize {
        self.lens.iter().map(|&l| l * l).sum()
    }

    /// Sum of squared *padded* lengths — the attention-score work a padded
    /// implementation performs.
    pub fn sum_sq_padded(&self) -> usize {
        self.lens.len() * self.max_len * self.max_len
    }

    /// TurboTransformers-style smart batching: sorts sequences by length
    /// and splits them into `num_buckets` contiguous groups, each padded to
    /// its own maximum. Returns the sub-batches in processing order.
    pub fn rebucket(&self, num_buckets: usize) -> Vec<Batch> {
        assert!(num_buckets > 0, "need at least one bucket");
        let mut sorted = self.lens.clone();
        sorted.sort_unstable();
        let per = sorted.len().div_ceil(num_buckets);
        sorted
            .chunks(per.max(1))
            .map(|chunk| Batch::padded_to_longest(chunk.to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_waste_basic() {
        let b = Batch::padded_to(vec![10, 20, 30], 40).batch;
        assert_eq!(b.padded_tokens(), 120);
        assert_eq!(b.real_tokens(), 60);
        assert!((b.padding_waste() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn padded_to_longest_uses_batch_max() {
        let b = Batch::padded_to_longest(vec![5, 17, 9]);
        assert_eq!(b.max_len, 17);
        assert_eq!(b.padded_tokens(), 51);
    }

    #[test]
    fn padded_to_reports_overflow_instead_of_dropping() {
        let split = Batch::padded_to(vec![10, 50, 130], 40);
        assert_eq!(split.batch.lens, vec![10, 40, 40]);
        assert_eq!(split.overflow, vec![10, 90]);
        assert_eq!(split.overflow_tokens(), 100);
        assert!(!split.is_complete());
        // Every real token is accounted for: batch + overflow == input.
        assert_eq!(split.batch.real_tokens() + split.overflow_tokens(), 190);
    }

    #[test]
    fn padded_to_within_limit_is_complete() {
        let split = Batch::padded_to(vec![10, 20, 30], 40);
        assert!(split.is_complete());
        assert!(split.follow_up().is_none());
        assert_eq!(split.overflow_tokens(), 0);
    }

    #[test]
    fn split_to_conserves_tokens_across_follow_ups() {
        let lens = vec![10, 130, 50, 90];
        let total: usize = lens.iter().sum();
        let batches = Batch::split_to(lens, 40);
        // 130 needs ceil(130/40) = 4 batches.
        assert_eq!(batches.len(), 4);
        let real: usize = batches.iter().map(Batch::real_tokens).sum();
        assert_eq!(real, total);
        assert!(batches
            .iter()
            .all(|b| b.lens.iter().all(|&l| l <= b.max_len)));
        // Follow-up batches shrink: only over-long sequences continue.
        assert_eq!(batches[1].batch_size(), 3); // 130, 50 and 90 continue
        assert_eq!(batches[2].batch_size(), 2); // 130 and 90 continue
        assert_eq!(batches[3].batch_size(), 1); // only 130 continues
    }

    #[test]
    fn rebucket_reduces_waste() {
        let lens: Vec<usize> = (1..=64).collect();
        let one = Batch::padded_to_longest(lens.clone());
        let buckets = one.rebucket(8);
        let bucket_padded: usize = buckets.iter().map(Batch::padded_tokens).sum();
        assert!(bucket_padded < one.padded_tokens());
        let total_real: usize = buckets.iter().map(Batch::real_tokens).sum();
        assert_eq!(total_real, one.real_tokens());
    }

    #[test]
    fn attention_work_relation() {
        let b = Batch::padded_to(vec![16, 64], 128).batch;
        assert!(b.sum_sq_real() < b.sum_sq_padded());
        assert_eq!(b.sum_sq_real(), 16 * 16 + 64 * 64);
    }

    #[test]
    fn empty_batch_is_safe() {
        let b = Batch::padded_to_longest(vec![]);
        assert_eq!(b.padding_waste(), 0.0);
        assert_eq!(b.padded_tokens(), 0);
    }
}
