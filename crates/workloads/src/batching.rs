//! Batching helpers: padding waste and TurboTransformers-style re-batching.

/// One padded batch of variable-length sequences (Figure 2c).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Real sequence lengths.
    pub lens: Vec<usize>,
    /// Length every sequence is padded to.
    pub max_len: usize,
}

impl Batch {
    /// Builds a batch padded to the longest sequence in it.
    pub fn padded_to_longest(lens: Vec<usize>) -> Self {
        let max_len = lens.iter().copied().max().unwrap_or(0);
        Batch { lens, max_len }
    }

    /// Builds a batch padded to a fixed truncation length.
    pub fn padded_to(lens: Vec<usize>, max_len: usize) -> Self {
        Batch {
            lens: lens.into_iter().map(|l| l.min(max_len)).collect(),
            max_len,
        }
    }

    /// Number of sequences.
    pub fn batch_size(&self) -> usize {
        self.lens.len()
    }

    /// Tokens after padding (`batch * max_len`).
    pub fn padded_tokens(&self) -> usize {
        self.lens.len() * self.max_len
    }

    /// Real (non-padding) tokens.
    pub fn real_tokens(&self) -> usize {
        self.lens.iter().sum()
    }

    /// Fraction of padded positions that are waste.
    pub fn padding_waste(&self) -> f64 {
        if self.padded_tokens() == 0 {
            return 0.0;
        }
        1.0 - self.real_tokens() as f64 / self.padded_tokens() as f64
    }

    /// Sum of squared *real* lengths — the attention-score work a
    /// padding-free implementation performs.
    pub fn sum_sq_real(&self) -> usize {
        self.lens.iter().map(|&l| l * l).sum()
    }

    /// Sum of squared *padded* lengths — the attention-score work a padded
    /// implementation performs.
    pub fn sum_sq_padded(&self) -> usize {
        self.lens.len() * self.max_len * self.max_len
    }

    /// TurboTransformers-style smart batching: sorts sequences by length
    /// and splits them into `num_buckets` contiguous groups, each padded to
    /// its own maximum. Returns the sub-batches in processing order.
    pub fn rebucket(&self, num_buckets: usize) -> Vec<Batch> {
        assert!(num_buckets > 0, "need at least one bucket");
        let mut sorted = self.lens.clone();
        sorted.sort_unstable();
        let per = sorted.len().div_ceil(num_buckets);
        sorted
            .chunks(per.max(1))
            .map(|chunk| Batch::padded_to_longest(chunk.to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_waste_basic() {
        let b = Batch::padded_to(vec![10, 20, 30], 40);
        assert_eq!(b.padded_tokens(), 120);
        assert_eq!(b.real_tokens(), 60);
        assert!((b.padding_waste() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn padded_to_longest_uses_batch_max() {
        let b = Batch::padded_to_longest(vec![5, 17, 9]);
        assert_eq!(b.max_len, 17);
        assert_eq!(b.padded_tokens(), 51);
    }

    #[test]
    fn rebucket_reduces_waste() {
        let lens: Vec<usize> = (1..=64).collect();
        let one = Batch::padded_to_longest(lens.clone());
        let buckets = one.rebucket(8);
        let bucket_padded: usize = buckets.iter().map(Batch::padded_tokens).sum();
        assert!(bucket_padded < one.padded_tokens());
        let total_real: usize = buckets.iter().map(Batch::real_tokens).sum();
        assert_eq!(total_real, one.real_tokens());
    }

    #[test]
    fn attention_work_relation() {
        let b = Batch::padded_to(vec![16, 64], 128);
        assert!(b.sum_sq_real() < b.sum_sq_padded());
        assert_eq!(b.sum_sq_real(), 16 * 16 + 64 * 64);
    }

    #[test]
    fn empty_batch_is_safe() {
        let b = Batch::padded_to_longest(vec![]);
        assert_eq!(b.padding_waste(), 0.0);
        assert_eq!(b.padded_tokens(), 0);
    }
}
