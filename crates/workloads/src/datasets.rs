//! Per-dataset sequence-length distributions.
//!
//! Length statistics below are the published/commonly-reported token-length
//! summaries of each dataset under a BERT-style subword tokenizer, rounded
//! to coarse values; they parameterise truncated log-normal samplers. The
//! experiments depend on the *dispersion* of lengths (padding waste), not
//! on exact histograms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic stand-in for one evaluation dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as shown in the paper's figures.
    pub name: &'static str,
    /// Mean token length.
    pub mean_len: f64,
    /// Standard deviation of token length.
    pub std_len: f64,
    /// Minimum sampled length.
    pub min_len: usize,
    /// Maximum (truncation) length — also the padded batch length.
    pub max_len: usize,
}

impl DatasetSpec {
    /// Samples `batch` sequence lengths, deterministically per seed.
    pub fn sample_lengths(&self, batch: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed ^ fnv(self.name));
        // Log-normal via exp of a normal fitted to (mean, std) moments.
        let m = self.mean_len.max(1.0);
        let v = self.std_len * self.std_len;
        let sigma2 = (1.0 + v / (m * m)).ln();
        let mu = m.ln() - sigma2 / 2.0;
        let sigma = sigma2.sqrt();
        (0..batch)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-9..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let len = (mu + sigma * z).exp().round() as usize;
                len.clamp(self.min_len, self.max_len)
            })
            .collect()
    }

    /// All GLUE tasks used by Figures 11, 15 and 19, in the paper's order.
    pub fn glue() -> Vec<DatasetSpec> {
        vec![
            Self::mnli(),
            Self::mrpc(),
            Self::cola(),
            Self::rte(),
            Self::qqp(),
            Self::sst2(),
            Self::wnli(),
            Self::qnli(),
            Self::stsb(),
        ]
    }

    /// The twelve BERT datasets of Figure 11 (GLUE + IMDB + Multi-XScience
    /// + Multi-News).
    pub fn bert_suite() -> Vec<DatasetSpec> {
        let mut v = Self::glue();
        v.push(Self::imdb());
        v.push(Self::multi_xscience());
        v.push(Self::multi_news());
        v
    }

    /// MNLI (premise+hypothesis pairs, short).
    pub fn mnli() -> Self {
        DatasetSpec {
            name: "mnli",
            mean_len: 39.0,
            std_len: 17.0,
            min_len: 8,
            max_len: 128,
        }
    }

    /// MRPC (sentence pairs).
    pub fn mrpc() -> Self {
        DatasetSpec {
            name: "mrpc",
            mean_len: 53.0,
            std_len: 15.0,
            min_len: 16,
            max_len: 128,
        }
    }

    /// CoLA (single short sentences).
    pub fn cola() -> Self {
        DatasetSpec {
            name: "cola",
            mean_len: 11.0,
            std_len: 5.0,
            min_len: 4,
            max_len: 64,
        }
    }

    /// RTE (premise+hypothesis, longer premises).
    pub fn rte() -> Self {
        DatasetSpec {
            name: "rte",
            mean_len: 64.0,
            std_len: 30.0,
            min_len: 12,
            max_len: 256,
        }
    }

    /// QQP (question pairs).
    pub fn qqp() -> Self {
        DatasetSpec {
            name: "qqp",
            mean_len: 30.0,
            std_len: 12.0,
            min_len: 8,
            max_len: 128,
        }
    }

    /// SST-2 (single sentences).
    pub fn sst2() -> Self {
        DatasetSpec {
            name: "sst2",
            mean_len: 25.0,
            std_len: 12.0,
            min_len: 4,
            max_len: 64,
        }
    }

    /// WNLI (Winograd pairs).
    pub fn wnli() -> Self {
        DatasetSpec {
            name: "wnli",
            mean_len: 37.0,
            std_len: 14.0,
            min_len: 12,
            max_len: 128,
        }
    }

    /// QNLI (question + answer sentence).
    pub fn qnli() -> Self {
        DatasetSpec {
            name: "qnli",
            mean_len: 51.0,
            std_len: 22.0,
            min_len: 12,
            max_len: 128,
        }
    }

    /// STS-B (sentence pairs).
    pub fn stsb() -> Self {
        DatasetSpec {
            name: "stsb",
            mean_len: 31.0,
            std_len: 13.0,
            min_len: 8,
            max_len: 128,
        }
    }

    /// IMDB movie reviews (long documents).
    pub fn imdb() -> Self {
        DatasetSpec {
            name: "imdb",
            mean_len: 230.0,
            std_len: 170.0,
            min_len: 32,
            max_len: 512,
        }
    }

    /// Multi-XScience ("xsci." in Figure 11): multi-document scientific
    /// summarisation inputs.
    pub fn multi_xscience() -> Self {
        DatasetSpec {
            name: "xsci.",
            mean_len: 780.0,
            std_len: 280.0,
            min_len: 128,
            max_len: 1024,
        }
    }

    /// Multi-News ("news" in Figure 11): multi-document news clusters.
    pub fn multi_news() -> Self {
        DatasetSpec {
            name: "news",
            mean_len: 1700.0,
            std_len: 600.0,
            min_len: 256,
            max_len: 2048,
        }
    }

    /// Alpaca instruction-following pairs (OPT fine-tuning, Figures 10/14).
    pub fn alpaca() -> Self {
        DatasetSpec {
            name: "alpaca",
            mean_len: 270.0,
            std_len: 150.0,
            min_len: 32,
            max_len: 512,
        }
    }

    /// Arxiv long-document corpus (Longformer, Figure 12) at the given
    /// truncation length.
    pub fn arxiv(max_len: usize) -> Self {
        DatasetSpec {
            name: "arxiv",
            mean_len: 0.8 * max_len as f64,
            std_len: 0.25 * max_len as f64,
            min_len: max_len / 4,
            max_len,
        }
    }

    /// Lakh MIDI (Museformer, Figure 13) at the given truncation length —
    /// symbolic music sequences fill most of the window.
    pub fn lmd(max_len: usize) -> Self {
        DatasetSpec {
            name: "lmd",
            mean_len: 0.85 * max_len as f64,
            std_len: 0.2 * max_len as f64,
            min_len: max_len / 4,
            max_len,
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        for spec in DatasetSpec::bert_suite() {
            let lens = spec.sample_lengths(256, 1);
            assert!(lens.iter().all(|&l| l >= spec.min_len && l <= spec.max_len));
        }
    }

    #[test]
    fn mean_roughly_matches_spec() {
        let spec = DatasetSpec::mnli();
        let lens = spec.sample_lengths(10_000, 2);
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(
            (mean - spec.mean_len).abs() < spec.mean_len * 0.15,
            "mean {mean} vs {}",
            spec.mean_len
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let spec = DatasetSpec::qnli();
        assert_eq!(spec.sample_lengths(32, 7), spec.sample_lengths(32, 7));
        assert_ne!(spec.sample_lengths(32, 7), spec.sample_lengths(32, 8));
    }

    #[test]
    fn different_datasets_differ() {
        let a = DatasetSpec::cola().sample_lengths(64, 1);
        let b = DatasetSpec::multi_news().sample_lengths(64, 1);
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
        assert!(mean(&b) > 10.0 * mean(&a));
    }

    #[test]
    fn suite_has_twelve_datasets() {
        assert_eq!(DatasetSpec::bert_suite().len(), 12);
        assert_eq!(DatasetSpec::glue().len(), 9);
    }
}
