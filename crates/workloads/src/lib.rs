//! Synthetic workload generators for the PIT reproduction.
//!
//! The paper evaluates on real datasets (GLUE, IMDB, Multi-XScience,
//! Multi-News, Alpaca, Arxiv, the Lakh MIDI dataset). Those datasets enter
//! the experiments only through their *shape statistics* — sequence-length
//! distributions, routing histograms, activation densities — so this crate
//! substitutes seeded samplers with matching statistics (`DESIGN.md` §2).
//! Per-dataset parameters are documented on each [`datasets::DatasetSpec`].

pub mod batching;
pub mod datasets;
pub mod patterns;

pub use batching::{padding_waste, Batch, SplitBatch};
pub use datasets::DatasetSpec;
pub use patterns::{ArrivalTrace, DecodeSpec, DecodeTrace, SharedPrefixSpec};
