//! The §5.6 sparsity-pattern repetition study.
//!
//! A hypothetical alternative to PIT is to memorise frequent sparsity
//! patterns and reuse per-pattern compiled kernels. Figure 20 invalidates
//! it: traversing MNLI, barely 0.4% of batches hit a previously-seen
//! sequence-length pattern, and 0.1% for ReLU activation patterns. This
//! module reproduces that measurement over the synthetic workloads.

use crate::datasets::DatasetSpec;
use pit_sparse::generate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A request arrival trace for serving experiments: per-request prompt
/// lengths drawn from a dataset's length distribution, plus Poisson
/// arrival offsets. Closed-loop load generators use only the lengths;
/// open-loop replay (a ROADMAP follow-up) uses the timestamps too.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Prompt length of each request, in arrival order.
    pub lens: Vec<usize>,
    /// Arrival time of each request (seconds since trace start),
    /// non-decreasing.
    pub arrival_s: Vec<f64>,
}

impl ArrivalTrace {
    /// Samples a trace of `n` requests from `spec`'s length distribution
    /// with exponential (Poisson-process) inter-arrivals at `rate_rps`
    /// requests per second. Deterministic per seed.
    pub fn poisson(spec: &DatasetSpec, n: usize, rate_rps: f64, seed: u64) -> Self {
        assert!(rate_rps > 0.0, "arrival rate must be positive");
        let lens = spec.sample_lengths(n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut t = 0.0;
        let arrival_s = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-12..1.0);
                t += -u.ln() / rate_rps;
                t
            })
            .collect();
        ArrivalTrace { lens, arrival_s }
    }

    /// Samples a bursty on/off trace: arrivals are Poisson at `burst_rps`
    /// during ON phases (exponential duration, mean `mean_on_s`) separated
    /// by silent OFF gaps (exponential, mean `mean_off_s`) — the classic
    /// interrupted-Poisson model of diurnal/bursty serving traffic, which
    /// stresses admission far harder than a smooth Poisson stream of the
    /// same average rate. Deterministic per seed.
    pub fn bursty(
        spec: &DatasetSpec,
        n: usize,
        burst_rps: f64,
        mean_on_s: f64,
        mean_off_s: f64,
        seed: u64,
    ) -> Self {
        assert!(burst_rps > 0.0, "burst arrival rate must be positive");
        assert!(mean_on_s > 0.0, "ON phases must have positive mean length");
        assert!(mean_off_s >= 0.0, "OFF gap mean cannot be negative");
        let lens = spec.sample_lengths(n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
        let mut exp = move |mean: f64| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            -u.ln() * mean
        };
        let mut t = 0.0_f64;
        let mut on_left = exp(mean_on_s);
        let mut arrival_s = Vec::with_capacity(n);
        for _ in 0..n {
            loop {
                let gap = exp(1.0 / burst_rps);
                if gap <= on_left {
                    on_left -= gap;
                    t += gap;
                    break;
                }
                // The ON window ends before the next arrival: burn its
                // remainder, sleep through an OFF gap, start a new window.
                t += on_left + exp(mean_off_s);
                on_left = exp(mean_on_s);
            }
            arrival_s.push(t);
        }
        ArrivalTrace { lens, arrival_s }
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// True when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Total real tokens across all requests.
    pub fn total_tokens(&self) -> usize {
        self.lens.iter().sum()
    }
}

/// Seeded sampler for decode (output) lengths: a truncated geometric
/// distribution, the standard first-order model of autoregressive output
/// lengths (each step stops with fixed probability, giving the heavy
/// right tail real chat/completion traces show).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeSpec {
    /// Mean output length the geometric targets (before truncation).
    pub mean_out: f64,
    /// Minimum output length (every request decodes at least this many
    /// tokens; 1 = the prefill's own first token only).
    pub min_out: usize,
    /// Maximum output length (generation cap).
    pub max_out: usize,
}

impl DecodeSpec {
    /// A geometric output-length distribution with the given mean and
    /// truncation bounds.
    pub fn geometric(mean_out: f64, min_out: usize, max_out: usize) -> Self {
        assert!(min_out >= 1, "every request emits at least one token");
        assert!(max_out >= min_out, "max_out must be >= min_out");
        DecodeSpec {
            mean_out: mean_out.max(min_out as f64),
            min_out,
            max_out,
        }
    }

    /// Chat-style completions: mean 64 tokens, 1..=256.
    pub fn chat() -> Self {
        Self::geometric(64.0, 1, 256)
    }

    /// Short classification-style generations: mean 8 tokens, 1..=32.
    pub fn short() -> Self {
        Self::geometric(8.0, 1, 32)
    }

    /// Summarization-style generations: every request writes a real
    /// summary (≥ 16 tokens) and the geometric tail reaches 768 — so a
    /// request's KV footprint is dominated by its *output*, growing page
    /// by page long after admission. Paired with a short-prompt dataset
    /// (e.g. `DatasetSpec::cola`) this is the workload that reliably
    /// drives KV-pool pressure: admission sees tiny prompts and says yes,
    /// then decode growth outruns the pool and the preemption policy —
    /// recompute vs swap-to-host — decides what that costs.
    pub fn summarization() -> Self {
        Self::geometric(192.0, 16, 768)
    }

    /// Samples `n` output lengths, deterministically per seed.
    pub fn sample_output_lens(&self, n: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);
        // Geometric over {0, 1, ...} via inverse CDF, shifted by min_out:
        // stop probability p chosen so the un-truncated mean is mean_out.
        let extra_mean = (self.mean_out - self.min_out as f64).max(0.0);
        let p = 1.0 / (extra_mean + 1.0);
        let log1mp = (1.0 - p).ln();
        (0..n)
            .map(|_| {
                let extra = if log1mp == 0.0 {
                    // p == 1: degenerate at min_out.
                    0
                } else {
                    let u: f64 = rng.gen_range(1e-12..1.0);
                    (u.ln() / log1mp).floor() as usize
                };
                (self.min_out + extra).min(self.max_out)
            })
            .collect()
    }
}

/// A decode serving trace: per-request prompt lengths, target output
/// lengths and arrival timestamps. The decode runtime replays it open-loop
/// — each request is admitted at its arrival time, prefilled once, then
/// decodes one token per iteration until its output length is reached.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeTrace {
    /// Prompt length of each request, in arrival order.
    pub prompt_lens: Vec<usize>,
    /// Output (decode) length of each request.
    pub output_lens: Vec<usize>,
    /// Arrival time of each request (seconds since trace start),
    /// non-decreasing.
    pub arrival_s: Vec<f64>,
    /// Prompt token IDs per request — what prefix caching matches on.
    /// Empty when the trace carries only lengths (no prompt content);
    /// when present, `prompt_ids[i].len() == prompt_lens[i]`.
    pub prompt_ids: Vec<Vec<u32>>,
}

impl DecodeTrace {
    /// Samples a trace of `n` requests: prompts from `spec`, output
    /// lengths from `decode`, Poisson arrivals at `rate_rps`.
    /// Deterministic per seed.
    pub fn poisson(
        spec: &DatasetSpec,
        decode: &DecodeSpec,
        n: usize,
        rate_rps: f64,
        seed: u64,
    ) -> Self {
        let arrivals = ArrivalTrace::poisson(spec, n, rate_rps, seed);
        let output_lens = decode.sample_output_lens(n, seed);
        DecodeTrace {
            prompt_lens: arrivals.lens,
            output_lens,
            arrival_s: arrivals.arrival_s,
            prompt_ids: Vec::new(),
        }
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.prompt_lens.len()
    }

    /// True when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.prompt_lens.is_empty()
    }

    /// Total prompt tokens across all requests.
    pub fn total_prompt_tokens(&self) -> usize {
        self.prompt_lens.iter().sum()
    }

    /// Total decoded tokens across all requests.
    pub fn total_output_tokens(&self) -> usize {
        self.output_lens.iter().sum()
    }

    /// Total real tokens the trace serves (prompt + output).
    pub fn total_tokens(&self) -> usize {
        self.total_prompt_tokens() + self.total_output_tokens()
    }
}

/// Seeded generator of prompts with *shared prefixes*: every prompt is
/// `system prompt ++ template ++ unique tail`, with the system prompt and
/// template drawn from small pools under a Zipf-ish popularity law — the
/// first-order model of production chat traffic, where a handful of
/// system prompts and few-shot templates front nearly every request.
/// This is the cross-request redundancy prefix caching harvests.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedPrefixSpec {
    /// Vocabulary size token IDs are drawn from.
    pub vocab: u32,
    /// Distinct system prompts in the pool.
    pub num_system_prompts: usize,
    /// Tokens per system prompt.
    pub system_tokens: usize,
    /// Distinct few-shot/task templates per system prompt.
    pub num_templates: usize,
    /// Tokens per template.
    pub template_tokens: usize,
    /// Minimum unique-tail tokens per request (the user's own turn).
    pub unique_min: usize,
    /// Maximum unique-tail tokens per request.
    pub unique_max: usize,
    /// Zipf exponent of pool popularity (0 = uniform; larger = a few
    /// system prompts dominate, raising the achievable hit rate).
    pub zipf_exponent: f64,
}

impl SharedPrefixSpec {
    /// A chat-assistant-style workload: 8 system prompts of 256 tokens,
    /// 24 templates of 64 tokens each, 16–96 unique tokens per request,
    /// Zipf 1.1 popularity — most prompts share their first ~320 tokens
    /// with many other live requests.
    pub fn assistants() -> Self {
        SharedPrefixSpec {
            vocab: 32_000,
            num_system_prompts: 8,
            system_tokens: 256,
            num_templates: 24,
            template_tokens: 64,
            unique_min: 16,
            unique_max: 96,
            zipf_exponent: 1.1,
        }
    }

    /// Token stream of pool entry `k` in pool `tag`, deterministic per
    /// spec seed.
    fn pool_tokens(&self, seed: u64, tag: u64, k: usize, len: usize) -> Vec<u32> {
        let mut rng =
            StdRng::seed_from_u64(seed ^ tag.rotate_left(17) ^ (k as u64).wrapping_mul(0x9e37));
        (0..len).map(|_| rng.gen_range(0..self.vocab)).collect()
    }

    /// Samples a pool index with probability `∝ 1/(rank+1)^zipf_exponent`.
    fn zipf_pick(&self, pool: usize, rng: &mut StdRng) -> usize {
        let weights: Vec<f64> = (0..pool)
            .map(|k| 1.0 / ((k + 1) as f64).powf(self.zipf_exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen_range(0.0..1.0) * total;
        for (k, w) in weights.iter().enumerate() {
            if u < *w {
                return k;
            }
            u -= w;
        }
        pool - 1
    }

    /// Generates `n` prompts (token IDs), deterministic per seed.
    pub fn prompts(&self, n: usize, seed: u64) -> Vec<Vec<u32>> {
        assert!(self.vocab >= 2, "need a non-trivial vocabulary");
        assert!(self.num_system_prompts >= 1 && self.num_templates >= 1);
        assert!(self.unique_max >= self.unique_min);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6c62_272e_07bb_0142);
        (0..n)
            .map(|_| {
                let sys = self.zipf_pick(self.num_system_prompts, &mut rng);
                let tpl = self.zipf_pick(self.num_templates, &mut rng);
                let tail_len = rng.gen_range(self.unique_min..self.unique_max + 1);
                let mut prompt = self.pool_tokens(seed, 0x5359, sys, self.system_tokens);
                // Templates are per-system-prompt so template reuse only
                // pays off behind a shared system prefix (page-granular
                // matching cannot reuse a template under a different
                // prefix anyway).
                prompt.extend(self.pool_tokens(
                    seed,
                    0x54504c ^ (sys as u64) << 32,
                    tpl,
                    self.template_tokens,
                ));
                prompt.extend((0..tail_len).map(|_| rng.gen_range(0..self.vocab)));
                prompt
            })
            .collect()
    }

    /// Builds a [`DecodeTrace`] with prompt content: prompts from this
    /// spec, output lengths from `decode`, and the caller's arrival
    /// timestamps (e.g. [`ArrivalTrace::bursty`]). Deterministic per seed.
    pub fn decode_trace(&self, decode: &DecodeSpec, arrival_s: Vec<f64>, seed: u64) -> DecodeTrace {
        let n = arrival_s.len();
        let prompt_ids = self.prompts(n, seed);
        DecodeTrace {
            prompt_lens: prompt_ids.iter().map(Vec::len).collect(),
            output_lens: decode.sample_output_lens(n, seed),
            arrival_s,
            prompt_ids,
        }
    }
}

/// Cumulative hit ratio after each batch: entry `i` is
/// `hits_so_far / (i + 1)`.
pub fn cumulative_hit_ratio(hashes: impl IntoIterator<Item = u64>) -> Vec<f64> {
    let mut seen = HashSet::new();
    let mut hits = 0usize;
    let mut out = Vec::new();
    for (i, h) in hashes.into_iter().enumerate() {
        if !seen.insert(h) {
            hits += 1;
        }
        out.push(hits as f64 / (i + 1) as f64);
    }
    out
}

/// Pattern hash of one batch's sequence-length pattern (order matters: the
/// padding mask is positional).
pub fn seqlen_pattern_hash(lens: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in lens {
        for b in (l as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Runs the sequence-length repetition study: traverses `num_batches`
/// batches of the dataset and returns the cumulative hit-ratio curve.
pub fn seqlen_study(spec: &DatasetSpec, batch: usize, num_batches: usize, seed: u64) -> Vec<f64> {
    cumulative_hit_ratio(
        (0..num_batches).map(|i| seqlen_pattern_hash(&spec.sample_lengths(batch, seed + i as u64))),
    )
}

/// Runs the ReLU-activation repetition study: each batch's activation mask
/// (at the given sparsity) is hashed; returns the cumulative hit ratio.
pub fn relu_study(
    rows: usize,
    cols: usize,
    sparsity: f64,
    num_batches: usize,
    seed: u64,
) -> Vec<f64> {
    cumulative_hit_ratio((0..num_batches).map(|i| {
        generate::relu_activation_mask(rows, cols, sparsity, seed + i as u64).pattern_hash()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_trace_is_deterministic_and_ordered() {
        let spec = DatasetSpec::mnli();
        let a = ArrivalTrace::poisson(&spec, 128, 50.0, 7);
        let b = ArrivalTrace::poisson(&spec, 128, 50.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 128);
        assert!(a.arrival_s.windows(2).all(|w| w[0] <= w[1]));
        assert!(a
            .lens
            .iter()
            .all(|&l| l >= spec.min_len && l <= spec.max_len));
        assert_eq!(a.total_tokens(), a.lens.iter().sum::<usize>());
        // Mean inter-arrival should be near 1/rate.
        let mean_gap = a.arrival_s.last().unwrap() / 128.0;
        assert!((mean_gap - 0.02).abs() < 0.01, "mean gap {mean_gap}");
    }

    #[test]
    fn decode_lengths_are_seeded_and_bounded() {
        let spec = DecodeSpec::chat();
        let a = spec.sample_output_lens(512, 3);
        let b = spec.sample_output_lens(512, 3);
        assert_eq!(a, b);
        assert_ne!(a, spec.sample_output_lens(512, 4));
        assert!(a
            .iter()
            .all(|&o| (spec.min_out..=spec.max_out).contains(&o)));
        // The truncated mean lands near the target (truncation pulls down).
        let mean = a.iter().sum::<usize>() as f64 / a.len() as f64;
        assert!(
            (mean - spec.mean_out).abs() < spec.mean_out * 0.25,
            "mean {mean} vs {}",
            spec.mean_out
        );
        // Geometric tail: some short, some long outputs.
        assert!(a.iter().any(|&o| o <= 8));
        assert!(a.iter().any(|&o| o >= 128));
    }

    #[test]
    fn summarization_outputs_are_long_and_heavy_tailed() {
        let spec = DecodeSpec::summarization();
        let lens = spec.sample_output_lens(512, 7);
        assert!(lens.iter().all(|&o| (16..=768).contains(&o)));
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(
            (mean - spec.mean_out).abs() < spec.mean_out * 0.25,
            "mean {mean} vs {}",
            spec.mean_out
        );
        // Heavy tail: a meaningful share of requests run very long —
        // the page-by-page growth that creates KV pressure.
        let long = lens.iter().filter(|&&o| o >= 384).count();
        assert!(long >= 32, "expected a heavy tail, saw {long}/512 >= 384");
        // Outputs dominate prompts for a short-prompt dataset: the KV
        // footprint is output-driven.
        let prompts = crate::datasets::DatasetSpec::cola().sample_lengths(512, 7);
        let prompt_mean = prompts.iter().sum::<usize>() as f64 / prompts.len() as f64;
        assert!(mean > 8.0 * prompt_mean, "{mean} vs prompt {prompt_mean}");
    }

    #[test]
    fn decode_spec_degenerate_mean_pins_to_min() {
        let spec = DecodeSpec::geometric(1.0, 4, 64);
        // mean_out clamps to min_out, p == 1, every draw is min_out.
        assert!(spec.sample_output_lens(64, 9).iter().all(|&o| o == 4));
    }

    #[test]
    fn decode_trace_pairs_prompts_outputs_and_arrivals() {
        let t = DecodeTrace::poisson(&DatasetSpec::mnli(), &DecodeSpec::chat(), 96, 100.0, 5);
        assert_eq!(t.len(), 96);
        assert_eq!(t.prompt_lens.len(), t.output_lens.len());
        assert_eq!(t.prompt_lens.len(), t.arrival_s.len());
        assert!(t.arrival_s.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            t.total_tokens(),
            t.total_prompt_tokens() + t.total_output_tokens()
        );
        // Prompts reuse the ArrivalTrace sampler: same seed, same lengths.
        let a = ArrivalTrace::poisson(&DatasetSpec::mnli(), 96, 100.0, 5);
        assert_eq!(t.prompt_lens, a.lens);
        assert_eq!(t.arrival_s, a.arrival_s);
        assert!(!t.is_empty());
    }

    #[test]
    fn bursty_trace_is_seeded_ordered_and_gappy() {
        let spec = DatasetSpec::mnli();
        let a = ArrivalTrace::bursty(&spec, 256, 200.0, 0.2, 1.0, 11);
        let b = ArrivalTrace::bursty(&spec, 256, 200.0, 0.2, 1.0, 11);
        assert_eq!(a, b);
        assert_ne!(a, ArrivalTrace::bursty(&spec, 256, 200.0, 0.2, 1.0, 12));
        assert_eq!(a.len(), 256);
        assert!(a.arrival_s.windows(2).all(|w| w[0] <= w[1]));
        // ON/OFF structure: inter-arrival gaps are bimodal — most are
        // burst-rate gaps (~5 ms), but OFF periods inject gaps far longer
        // than Poisson at the same burst rate would ever produce.
        let gaps: Vec<f64> = a.arrival_s.windows(2).map(|w| w[1] - w[0]).collect();
        let long = gaps.iter().filter(|&&g| g > 0.5).count();
        let short = gaps.iter().filter(|&&g| g < 0.05).count();
        assert!(long >= 3, "expected OFF gaps, saw {long}");
        assert!(short > gaps.len() / 2, "bursts dominate, saw {short}");
    }

    #[test]
    fn shared_prefix_prompts_share_page_aligned_prefixes() {
        let spec = SharedPrefixSpec::assistants();
        let a = spec.prompts(128, 5);
        assert_eq!(a, spec.prompts(128, 5), "seeded");
        assert_ne!(a, spec.prompts(128, 6));
        // Every prompt starts with one of the pool's system prompts.
        let systems: Vec<Vec<u32>> = (0..spec.num_system_prompts)
            .map(|k| spec.pool_tokens(5, 0x5359, k, spec.system_tokens))
            .collect();
        let mut counts = vec![0usize; spec.num_system_prompts];
        for p in &a {
            assert!(p.len() >= spec.system_tokens + spec.template_tokens + spec.unique_min);
            assert!(p.len() <= spec.system_tokens + spec.template_tokens + spec.unique_max);
            let k = systems
                .iter()
                .position(|s| p.starts_with(s))
                .expect("prompt starts with a pooled system prompt");
            counts[k] += 1;
        }
        // Zipf skew: the most popular system prompt beats the uniform
        // share, so prefix reuse concentrates where caching can win.
        assert!(counts[0] > 128 / spec.num_system_prompts, "{counts:?}");
    }

    #[test]
    fn shared_prefix_decode_trace_pairs_ids_and_lens() {
        let spec = SharedPrefixSpec::assistants();
        let arrivals = ArrivalTrace::bursty(&DatasetSpec::mnli(), 64, 300.0, 0.2, 0.5, 9);
        let t = spec.decode_trace(&DecodeSpec::chat(), arrivals.arrival_s.clone(), 9);
        assert_eq!(t.len(), 64);
        assert_eq!(t.prompt_ids.len(), t.len());
        for (ids, &len) in t.prompt_ids.iter().zip(&t.prompt_lens) {
            assert_eq!(ids.len(), len);
        }
        assert_eq!(t.arrival_s, arrivals.arrival_s);
        assert!(t.output_lens.iter().all(|&o| o >= 1));
        // Plain poisson traces carry no prompt content.
        let plain = DecodeTrace::poisson(&DatasetSpec::mnli(), &DecodeSpec::chat(), 8, 10.0, 1);
        assert!(plain.prompt_ids.is_empty());
    }

    #[test]
    fn identical_patterns_hit() {
        let ratios = cumulative_hit_ratio([1u64, 1, 1, 1]);
        assert_eq!(ratios, vec![0.0, 0.5, 2.0 / 3.0, 0.75]);
    }

    #[test]
    fn unique_patterns_never_hit() {
        let ratios = cumulative_hit_ratio([1u64, 2, 3, 4]);
        assert!(ratios.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn seqlen_hash_is_order_sensitive() {
        assert_ne!(seqlen_pattern_hash(&[3, 5]), seqlen_pattern_hash(&[5, 3]));
        assert_eq!(seqlen_pattern_hash(&[3, 5]), seqlen_pattern_hash(&[3, 5]));
    }

    #[test]
    fn mnli_seqlen_hit_ratio_is_low() {
        // Figure 20: ~0.4% for sequence-length patterns at batch 8, lower
        // at batch 32.
        let r8 = seqlen_study(&DatasetSpec::mnli(), 8, 500, 1);
        let r32 = seqlen_study(&DatasetSpec::mnli(), 32, 500, 1);
        assert!(
            *r8.last().unwrap() < 0.05,
            "batch-8 ratio {}",
            r8.last().unwrap()
        );
        assert!(r32.last().unwrap() <= r8.last().unwrap());
    }

    #[test]
    fn relu_hit_ratio_is_essentially_zero() {
        let r = relu_study(64, 64, 0.95, 200, 3);
        assert!(*r.last().unwrap() < 0.01);
    }
}
