//! The §5.6 sparsity-pattern repetition study.
//!
//! A hypothetical alternative to PIT is to memorise frequent sparsity
//! patterns and reuse per-pattern compiled kernels. Figure 20 invalidates
//! it: traversing MNLI, barely 0.4% of batches hit a previously-seen
//! sequence-length pattern, and 0.1% for ReLU activation patterns. This
//! module reproduces that measurement over the synthetic workloads.

use crate::datasets::DatasetSpec;
use pit_sparse::generate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A request arrival trace for serving experiments: per-request prompt
/// lengths drawn from a dataset's length distribution, plus Poisson
/// arrival offsets. Closed-loop load generators use only the lengths;
/// open-loop replay (a ROADMAP follow-up) uses the timestamps too.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Prompt length of each request, in arrival order.
    pub lens: Vec<usize>,
    /// Arrival time of each request (seconds since trace start),
    /// non-decreasing.
    pub arrival_s: Vec<f64>,
}

impl ArrivalTrace {
    /// Samples a trace of `n` requests from `spec`'s length distribution
    /// with exponential (Poisson-process) inter-arrivals at `rate_rps`
    /// requests per second. Deterministic per seed.
    pub fn poisson(spec: &DatasetSpec, n: usize, rate_rps: f64, seed: u64) -> Self {
        assert!(rate_rps > 0.0, "arrival rate must be positive");
        let lens = spec.sample_lengths(n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut t = 0.0;
        let arrival_s = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-12..1.0);
                t += -u.ln() / rate_rps;
                t
            })
            .collect();
        ArrivalTrace { lens, arrival_s }
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// True when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Total real tokens across all requests.
    pub fn total_tokens(&self) -> usize {
        self.lens.iter().sum()
    }
}

/// Cumulative hit ratio after each batch: entry `i` is
/// `hits_so_far / (i + 1)`.
pub fn cumulative_hit_ratio(hashes: impl IntoIterator<Item = u64>) -> Vec<f64> {
    let mut seen = HashSet::new();
    let mut hits = 0usize;
    let mut out = Vec::new();
    for (i, h) in hashes.into_iter().enumerate() {
        if !seen.insert(h) {
            hits += 1;
        }
        out.push(hits as f64 / (i + 1) as f64);
    }
    out
}

/// Pattern hash of one batch's sequence-length pattern (order matters: the
/// padding mask is positional).
pub fn seqlen_pattern_hash(lens: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in lens {
        for b in (l as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Runs the sequence-length repetition study: traverses `num_batches`
/// batches of the dataset and returns the cumulative hit-ratio curve.
pub fn seqlen_study(spec: &DatasetSpec, batch: usize, num_batches: usize, seed: u64) -> Vec<f64> {
    cumulative_hit_ratio(
        (0..num_batches).map(|i| seqlen_pattern_hash(&spec.sample_lengths(batch, seed + i as u64))),
    )
}

/// Runs the ReLU-activation repetition study: each batch's activation mask
/// (at the given sparsity) is hashed; returns the cumulative hit ratio.
pub fn relu_study(
    rows: usize,
    cols: usize,
    sparsity: f64,
    num_batches: usize,
    seed: u64,
) -> Vec<f64> {
    cumulative_hit_ratio((0..num_batches).map(|i| {
        generate::relu_activation_mask(rows, cols, sparsity, seed + i as u64).pattern_hash()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_trace_is_deterministic_and_ordered() {
        let spec = DatasetSpec::mnli();
        let a = ArrivalTrace::poisson(&spec, 128, 50.0, 7);
        let b = ArrivalTrace::poisson(&spec, 128, 50.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 128);
        assert!(a.arrival_s.windows(2).all(|w| w[0] <= w[1]));
        assert!(a
            .lens
            .iter()
            .all(|&l| l >= spec.min_len && l <= spec.max_len));
        assert_eq!(a.total_tokens(), a.lens.iter().sum::<usize>());
        // Mean inter-arrival should be near 1/rate.
        let mean_gap = a.arrival_s.last().unwrap() / 128.0;
        assert!((mean_gap - 0.02).abs() < 0.01, "mean gap {mean_gap}");
    }

    #[test]
    fn identical_patterns_hit() {
        let ratios = cumulative_hit_ratio([1u64, 1, 1, 1]);
        assert_eq!(ratios, vec![0.0, 0.5, 2.0 / 3.0, 0.75]);
    }

    #[test]
    fn unique_patterns_never_hit() {
        let ratios = cumulative_hit_ratio([1u64, 2, 3, 4]);
        assert!(ratios.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn seqlen_hash_is_order_sensitive() {
        assert_ne!(seqlen_pattern_hash(&[3, 5]), seqlen_pattern_hash(&[5, 3]));
        assert_eq!(seqlen_pattern_hash(&[3, 5]), seqlen_pattern_hash(&[3, 5]));
    }

    #[test]
    fn mnli_seqlen_hit_ratio_is_low() {
        // Figure 20: ~0.4% for sequence-length patterns at batch 8, lower
        // at batch 32.
        let r8 = seqlen_study(&DatasetSpec::mnli(), 8, 500, 1);
        let r32 = seqlen_study(&DatasetSpec::mnli(), 32, 500, 1);
        assert!(
            *r8.last().unwrap() < 0.05,
            "batch-8 ratio {}",
            r8.last().unwrap()
        );
        assert!(r32.last().unwrap() <= r8.last().unwrap());
    }

    #[test]
    fn relu_hit_ratio_is_essentially_zero() {
        let r = relu_study(64, 64, 0.95, 200, 3);
        assert!(*r.last().unwrap() < 0.01);
    }
}
