//! Decode-phase serving: padding-free continuous batching over a paged KV
//! cache vs. static padded batching, end to end on a seeded trace.
//!
//! The trace is open-loop (requests arrive at Poisson timestamps) with
//! MNLI-length prompts and seeded geometric output lengths; the model is
//! OPT-1.3B in fp16 on the modelled A100 — the memory-bound regime real
//! LLM serving runs in. Both policies get the same concurrency (64 slots):
//!
//! - **continuous padding-free**: a request prefills in 64-token chunks,
//!   then rejoins the batch every iteration, one token per step, with KV
//!   pages allocated on demand from `pit_kv`;
//! - **static padded**: requests batch once, prompts pad to the batch
//!   maximum, KV is reserved contiguously for the worst case, and every
//!   slot decodes until the longest output finishes.
//!
//! Both reports are dumped to `BENCH_decode.json` via
//! `DecodeReport::to_json` for CI to archive and diff with
//! `tools/bench_compare`; the continuous run's metrics are also written
//! as a Prometheus text exposition (`METRICS_decode.prom`), and a
//! re-run with tracing on feeds the windowed SLO monitor — rolling
//! TTFT/ITL attainment and burn rate joined with the device ledger's
//! busy fraction. The traced re-run also carries the causal blame
//! summary (who owns each request's latency, exactly tiled) into the
//! archived report, and an online drift detector replays the stream
//! against a baseline built from it — a throttled second run
//! (token budget halved) must raise quantile-shift alarms, surfaced on
//! the SLO report.
//!
//! ```bash
//! cargo run --release --example decode_serving
//! ```
//!
//! With `--serve-metrics <port>` the example additionally binds a live
//! scrape endpoint (`pit::trace::ScrapeServer`) on `127.0.0.1:<port>`
//! (`0` picks an ephemeral port), re-runs the continuous replay with a
//! `MetricsHub` attached so `curl /metrics`, `/slo` and `/series` (or
//! `pit_top`) observe it mid-flight, asserts the hubbed report is
//! byte-identical to the hub-free one, holds the endpoint open for
//! `--hold-secs <n>` (default 0) and shuts down gracefully.

use pit::gpusim::DeviceSpec;
use pit::models::ModelConfig;
use pit::serve::decode::{
    simulate_decode_trace, simulate_decode_trace_observed, simulate_decode_trace_traced,
    DecodePolicy, DecodeServeConfig,
};
use pit::trace::{
    DriftBaseline, DriftDetector, DriftPolicy, HubConfig, MetricsHub, ScrapeServer, SloMonitor,
    SloTarget, TraceSink,
};
use pit::workloads::{DatasetSpec, DecodeSpec, DecodeTrace};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut serve_port: Option<String> = None;
    let mut hold_secs = 0.0_f64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--serve-metrics" => {
                serve_port = Some(args.next().expect("--serve-metrics wants a port"));
            }
            "--hold-secs" => {
                hold_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--hold-secs wants a number");
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let spec = DatasetSpec::mnli();
    let out = DecodeSpec::geometric(128.0, 1, 512);
    let trace = DecodeTrace::poisson(&spec, &out, 160, 300.0, 31);
    println!(
        "trace: {} requests, {} prompt + {} output tokens ({} prompts, geometric outputs mean {:.0})\n",
        trace.len(),
        trace.total_prompt_tokens(),
        trace.total_output_tokens(),
        spec.name,
        out.mean_out,
    );

    let builder = || DecodeServeConfig::builder(ModelConfig::opt("1.3B"), DeviceSpec::a100_80gb());
    let free = simulate_decode_trace(
        &builder()
            .policy(DecodePolicy::ContinuousPaddingFree { token_budget: 128 })
            .build()
            .expect("valid continuous config"),
        &trace,
    );
    println!("{free}\n");
    let padded = simulate_decode_trace(
        &builder()
            .policy(DecodePolicy::StaticPadded { max_batch: 64 })
            .build()
            .expect("valid static config"),
        &trace,
    );
    println!("{padded}\n");

    println!(
        "continuous vs static: {:.2}x tokens/s, waste {:.1}% -> {:.1}%, \
         itl p95 {:.2} -> {:.2} ms, ttft p95 {:.0} -> {:.0} ms",
        free.tokens_per_s() / padded.tokens_per_s(),
        padded.padding_waste() * 100.0,
        free.padding_waste() * 100.0,
        padded.itl.p95 * 1e3,
        free.itl.p95 * 1e3,
        padded.ttft.p95 * 1e3,
        free.ttft.p95 * 1e3,
    );

    // Where did the device time go? The ledger attributes every modelled
    // second; the categories tile busy time exactly, and busy + stalls +
    // idle tile the virtual clock.
    println!(
        "\ncontinuous device time: {:.1}% busy, {:.1}% MFU \
         (prefill attn {:.2} s, decode attn {:.2} s, dense gemm {:.2} s, idle {:.2} s)",
        free.utilization.busy_fraction * 100.0,
        free.utilization.mfu * 100.0,
        free.ledger.prefill_attention_ps as f64 / 1e12,
        free.ledger.decode_attention_ps as f64 / 1e12,
        free.ledger.dense_gemm_ps as f64 / 1e12,
        free.ledger.idle_s(),
    );
    let prom = free.exposition().render();
    std::fs::write("METRICS_decode.prom", &prom).expect("write METRICS_decode.prom");
    println!(
        "wrote Prometheus exposition to METRICS_decode.prom ({} bytes)",
        prom.len()
    );

    // The windowed SLO monitor: re-run the continuous config with tracing
    // on, replay the lifecycle stream into rolling TTFT/ITL attainment,
    // and join the device ledger so each burn reading comes with the busy
    // fraction that explains it (capacity vs scheduling).
    let sink = TraceSink::enabled();
    let traced = simulate_decode_trace_traced(
        &builder()
            .policy(DecodePolicy::ContinuousPaddingFree { token_budget: 128 })
            .build()
            .expect("valid continuous config"),
        &trace,
        &sink,
    );
    let records = sink.drain();
    let mut monitor = SloMonitor::new(
        SloTarget {
            ttft_s: 0.5,
            itl_s: 0.05,
            objective: 0.99,
        },
        1.0,
    );
    monitor.observe(&records);
    let mut slo = monitor.report(Some(&traced.ledger));
    println!(
        "\nslo (ttft<=500ms, itl<=50ms, objective 99%): ttft attainment {:.1}% \
         (burn {:.2}), itl attainment {:.1}% (burn {:.2}), worst 1s window burn {:.2}, \
         device busy {:.1}%",
        slo.ttft_attainment * 100.0,
        slo.ttft_burn_rate,
        slo.itl_attainment * 100.0,
        slo.itl_burn_rate,
        slo.worst_window_burn_rate,
        slo.busy_fraction.expect("ledger joined") * 100.0,
    );

    // Causal blame: the traced run tiles every request's latency into
    // typed causes, so the tail has named owners instead of a number.
    let blame = traced.blame.as_ref().expect("traced run carries blame");
    println!("\n{blame}");

    // One JSON document with both runs, for the CI artifact. The
    // continuous side is the traced report — bit-identical ledger and
    // latencies (asserted below), plus the breakdown and blame blocks.
    let json = format!(
        "{{\"continuous\":{},\"static_padded\":{}}}",
        traced.to_json(),
        padded.to_json()
    );
    std::fs::write("BENCH_decode.json", &json).expect("write BENCH_decode.json");
    println!(
        "wrote both reports to BENCH_decode.json ({} bytes)",
        json.len()
    );

    // Online drift detection: commit this run as the baseline, then
    // replay a throttled deployment (token budget halved) against it.
    // The healthy replay must be quiet; the throttled one must raise
    // typed quantile-shift alarms — surfaced through the SLO report.
    let baseline = DriftBaseline::from_records(&records);
    let hub_baseline = baseline.clone();
    let mut healthy = DriftDetector::new(baseline.clone(), DriftPolicy::default(), 30.0);
    healthy.observe(&records);
    slo.drift = healthy.alarms();
    assert!(
        slo.drift.is_empty(),
        "a run compared against itself must not drift: {:?}",
        slo.drift
    );
    let throttled_sink = TraceSink::enabled();
    let throttled = simulate_decode_trace_traced(
        &builder()
            .policy(DecodePolicy::ContinuousPaddingFree { token_budget: 64 })
            .build()
            .expect("valid throttled config"),
        &trace,
        &throttled_sink,
    );
    let mut detector = DriftDetector::new(baseline, DriftPolicy::default(), 30.0);
    detector.observe(&throttled_sink.drain());
    if let Some(b) = throttled.blame.as_ref() {
        detector.observe_blame(b);
    }
    let alarms = detector.alarms();
    println!(
        "\ndrift vs baseline after halving the token budget ({} windows observed):",
        detector.window_count()
    );
    for a in &alarms {
        println!("  {a}");
    }
    assert!(
        !alarms.is_empty(),
        "halving the token budget must shift the latency quantiles"
    );

    // The CI smoke test leans on these assertions.
    assert_eq!(free.requests, trace.len(), "every request served");
    assert_eq!(padded.requests, trace.len());
    assert_eq!(
        free.real_tokens, padded.real_tokens,
        "identical real work arrived"
    );
    assert_eq!(
        free.padding_waste(),
        0.0,
        "continuous batching adds zero padding"
    );
    assert!(
        padded.padding_waste() > 0.0,
        "the static rectangle pays for padding"
    );
    assert!(
        free.tokens_per_s() > padded.tokens_per_s(),
        "padding-free must serve strictly more tokens per modelled GPU-second"
    );
    assert!(
        free.itl.p95 < padded.itl.p95,
        "padding-free must beat the rectangle on inter-token p95 ({:.3} vs {:.3} ms)",
        free.itl.p95 * 1e3,
        padded.itl.p95 * 1e3,
    );
    assert!(
        free.ttft.p95 < padded.ttft.p95,
        "and on time-to-first-token"
    );
    // KV pages are conserved: the allocator reports no leaks under either
    // policy, and the decode metrics carried live occupancy all along.
    for report in [&free, &padded] {
        assert!(
            report.kv.conserved(),
            "[{}] KV pages leaked: {}",
            report.policy,
            report.kv
        );
        assert!(report.kv_peak_occupancy <= 1.0);
        assert!(report.itl.p50 > 0.0 && report.itl.p50 <= report.itl.p95);
        assert!(report.itl.p95 <= report.itl.p99);
    }
    // Paging vs worst-case reservation: the static policy burns most of
    // its allocated slots on reservation slack.
    assert!(free.kv_mean_fragmentation < padded.kv_mean_fragmentation);
    // The ledger conserves exactly, the traced re-run replayed the same
    // virtual clock, and the SLO roll-up saw every request.
    for report in [&free, &padded] {
        assert!(report.ledger.conserved(), "[{}] ledger", report.policy);
    }
    assert_eq!(traced.ledger, free.ledger, "tracing perturbs nothing");
    assert_eq!(
        slo.windows.iter().map(|w| w.ttft_total).sum::<u64>(),
        trace.len() as u64,
        "one TTFT observation per request"
    );
    println!("\npadding-free continuous batching wins on every axis ✓");

    // Live observability plane (opt-in): bind the scrape endpoint, then
    // re-run the continuous replay with a MetricsHub attached — the same
    // SLO target as the monitor above and a drift baseline from the
    // traced run, so /slo carries attainment and any firing alarms. The
    // hub is write-only for the replay, so the hubbed report must be
    // byte-identical to the hub-free traced one even while a scraper
    // hammers the endpoint.
    if let Some(port) = serve_port {
        let hub = Arc::new(MetricsHub::new(HubConfig {
            window_s: 1.0,
            ring_capacity: 240,
            slo: Some(SloTarget {
                ttft_s: 0.5,
                itl_s: 0.05,
                objective: 0.99,
            }),
            drift: Some((hub_baseline, DriftPolicy::default())),
        }));
        let server = ScrapeServer::bind(hub.clone(), &format!("127.0.0.1:{port}"))
            .expect("bind scrape endpoint");
        println!(
            "\nserving live metrics at http://{} (GET /metrics, /slo, /series, /healthz)",
            server.local_addr()
        );
        let hub_sink = TraceSink::enabled();
        let (hubbed, _) = simulate_decode_trace_observed(
            &builder()
                .policy(DecodePolicy::ContinuousPaddingFree { token_budget: 128 })
                .build()
                .expect("valid continuous config"),
            &trace,
            &hub_sink,
            0,
            Some(&hub),
        );
        assert_eq!(
            hubbed.to_json(),
            traced.to_json(),
            "attaching the metrics hub must not change the report by one byte"
        );
        println!("hubbed replay report is byte-identical to the hub-free run ✓");
        if hold_secs > 0.0 {
            println!("holding the endpoint open for {hold_secs:.0}s (scrape away)...");
            std::thread::sleep(std::time::Duration::from_secs_f64(hold_secs));
        }
        let served = server.shutdown();
        println!("metrics endpoint closed cleanly after {served} requests");
    }
}
