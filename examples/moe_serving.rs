//! MoE serving scenario (paper Figure 2b / Figure 8): one Switch-style MoE
//! FFN layer served under every execution strategy, on real tensors for
//! PIT (correctness checked) and on the analytic simulator for the
//! end-to-end model comparison.
//!
//! ```bash
//! cargo run --release --example moe_serving
//! ```

use pit::core::ops::Pit;
use pit::gpusim::DeviceSpec;
use pit::models::{run_inference, Framework, ModelConfig};
use pit::sparse::generate::RoutingPlan;
use pit::tensor::{ops, DType, Tensor};
use pit::workloads::DatasetSpec;

fn main() {
    // --- Part 1: a real sparse MoE GEMM through PIT's fused kernel. ---
    let engine = Pit::new(DeviceSpec::a100_80gb());
    let tokens = Tensor::random([256, 64], 1);
    let num_experts = 8;
    let weights: Vec<Tensor> = (0..num_experts)
        .map(|e| Tensor::random([64, 128], 100 + e as u64))
        .collect();
    let plan = RoutingPlan::sample(256, num_experts, 0.8, 7);
    let lists = plan.expert_token_lists();
    let out = engine
        .moe_gemm(&tokens, &weights, &lists, DType::F32)
        .expect("moe gemm");
    // Verify every token against its expert's reference product.
    for (e, list) in lists.iter().enumerate() {
        for &t in list {
            let tok = Tensor::from_vec(tokens.row(t).unwrap(), [1, 64]).unwrap();
            let want = ops::matmul(&tok, &weights[e]).unwrap();
            let got = Tensor::from_vec(out.tensor.row(t).unwrap(), [1, 128]).unwrap();
            assert!(got.allclose(&want, 1e-3), "token {t}");
        }
    }
    println!(
        "fused MoE GEMM over {} experts: one launch, {:.1} us modelled, verified ✓",
        num_experts,
        out.stats.latency_s * 1e6
    );
    println!("expert loads (tokens): {:?}\n", plan.expert_counts());

    // --- Part 2: end-to-end Switch Transformer under each framework. ---
    println!("Switch Transformer, 128 experts, batch 32, fp16, A100:");
    println!("{:<22} {:>12} {:>10}", "framework", "latency ms", "mem GiB");
    let cfg = ModelConfig::switch_transformer(128);
    let lens = DatasetSpec::mnli().sample_lengths(32, 3);
    for fw in [
        Framework::PyTorch,
        Framework::PyTorchS,
        Framework::Tutel,
        Framework::DeepSpeed,
        Framework::MegaBlocks,
        Framework::PitNoSparseMoe,
        Framework::Pit,
    ] {
        let r = run_inference(&cfg, &lens, DeviceSpec::a100_80gb(), DType::F16, fw, 1, 3);
        let mem = if r.oom {
            "OOM".to_string()
        } else {
            format!("{:.1}", r.peak_gib)
        };
        println!("{:<22} {:>12.1} {:>10}", r.framework, r.latency_ms, mem);
    }
}
