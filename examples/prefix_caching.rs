//! Prompt-prefix caching: radix-indexed KV reuse vs. no-reuse continuous
//! batching, end to end on a seeded shared-prefix trace.
//!
//! The workload is the redundancy prefix caching exists for: every prompt
//! is `system prompt ++ template ++ unique tail`, with 8 system prompts
//! and 24 templates under a Zipf popularity law (`SharedPrefixSpec`), and
//! requests arrive in bursts (`ArrivalTrace::bursty` on/off arrivals) —
//! exactly when many concurrent requests carry the same prefix. The model
//! is OPT-1.3B in fp16 on the modelled A100.
//!
//! Both runs get the *same* KV-page budget and the same continuous
//! padding-free scheduler; the only difference is `prefix_caching`:
//!
//! - **no-reuse** (PR 3's policy): every request prefills its whole
//!   prompt, shared prefix included, every time;
//! - **prefix-cached**: admission matches the prompt against the radix
//!   index, shares the matched pages (refcounted, page-granular), and
//!   prefills only the suffix; completed prefills publish their prompt
//!   pages, and the index's LRU leaves are evicted when decode allocation
//!   needs the pages back.
//!
//! Both reports are dumped to `BENCH_prefix.json` via
//! `DecodeReport::to_json` for CI to archive and diff with
//! `tools/bench_compare`.
//!
//! ```bash
//! cargo run --release --example prefix_caching
//! ```

use pit::gpusim::DeviceSpec;
use pit::models::ModelConfig;
use pit::serve::decode::{simulate_decode_trace, DecodePolicy, DecodeServeConfig};
use pit::workloads::{ArrivalTrace, DatasetSpec, DecodeSpec, SharedPrefixSpec};

fn main() {
    let spec = SharedPrefixSpec::assistants();
    let out = DecodeSpec::geometric(96.0, 1, 384);
    let arrivals = ArrivalTrace::bursty(&DatasetSpec::mnli(), 160, 400.0, 0.25, 0.5, 41);
    let trace = spec.decode_trace(&out, arrivals.arrival_s, 41);
    println!(
        "trace: {} requests, {} prompt + {} output tokens \
         ({} system prompts x {} tokens, {} templates x {} tokens, bursty arrivals)\n",
        trace.len(),
        trace.total_prompt_tokens(),
        trace.total_output_tokens(),
        spec.num_system_prompts,
        spec.system_tokens,
        spec.num_templates,
        spec.template_tokens,
    );

    // Equal KV budget for both policies — reuse must win inside the same
    // memory, not by spending more of it.
    let base = DecodeServeConfig::builder(ModelConfig::opt("1.3B"), DeviceSpec::a100_80gb())
        .policy(DecodePolicy::ContinuousPaddingFree { token_budget: 128 })
        .kv_pages(2048);
    let plain = base.clone().build().expect("valid no-reuse config");
    // Acceptance mode: the refcounted pool's invariants are checked after
    // every iteration of the cached run.
    let cached = base
        .prefix_caching(true)
        .verify_invariants(true)
        .build()
        .expect("valid prefix-cached config");

    let no_reuse = simulate_decode_trace(&plain, &trace);
    println!("{no_reuse}\n");
    let reuse = simulate_decode_trace(&cached, &trace);
    println!("{reuse}\n");

    println!(
        "prefix-cached vs no-reuse: prefill {} -> {} tokens ({:.1}% served from cache), \
         ttft p95 {:.1} -> {:.1} ms, modelled GPU time {:.2} -> {:.2} s",
        no_reuse.prefill_tokens,
        reuse.prefill_tokens,
        100.0 * reuse.prefix_cached_tokens as f64 / no_reuse.prefill_tokens as f64,
        no_reuse.ttft.p95 * 1e3,
        reuse.ttft.p95 * 1e3,
        no_reuse.gpu_time_s,
        reuse.gpu_time_s,
    );

    // One JSON document with both runs, for the CI artifact.
    let json = format!(
        "{{\"no_reuse\":{},\"prefix_cached\":{}}}",
        no_reuse.to_json(),
        reuse.to_json()
    );
    std::fs::write("BENCH_prefix.json", &json).expect("write BENCH_prefix.json");
    println!(
        "\nwrote both reports to BENCH_prefix.json ({} bytes)",
        json.len()
    );
    println!(
        "prefix-cached device time: {:.1}% busy, {:.1}% MFU, idle {:.2} s",
        reuse.utilization.busy_fraction * 100.0,
        reuse.utilization.mfu * 100.0,
        reuse.ledger.idle_s(),
    );
    let prom = reuse.exposition().render();
    std::fs::write("METRICS_prefix.prom", &prom).expect("write METRICS_prefix.prom");
    println!(
        "wrote Prometheus exposition to METRICS_prefix.prom ({} bytes)",
        prom.len()
    );

    // Re-run the cached config with tracing on: prefix hits land as
    // instant markers on each lane, waits carry typed causes, and the
    // report gains the blame summary.
    let sink = pit::trace::TraceSink::enabled();
    let traced = pit::serve::decode::simulate_decode_trace_traced(&cached, &trace, &sink);
    assert_eq!(traced.ledger, reuse.ledger, "tracing perturbs nothing");
    let blame = traced.blame.as_ref().expect("traced run carries blame");
    println!("{blame}");
    let chrome = pit::trace::chrome_trace_json(&sink.snapshot());
    std::fs::write("TRACE_prefix.json", &chrome).expect("write TRACE_prefix.json");
    println!(
        "wrote Chrome trace to TRACE_prefix.json ({} bytes)",
        chrome.len()
    );

    // The CI smoke test leans on these assertions.
    assert_eq!(reuse.requests, trace.len(), "every request served");
    assert_eq!(no_reuse.requests, trace.len());
    assert_eq!(
        reuse.decode_tokens, no_reuse.decode_tokens,
        "identical decode work arrived"
    );
    assert!(
        reuse.prefill_tokens < no_reuse.prefill_tokens,
        "prefix caching must cut prefill FLOPs ({} vs {})",
        reuse.prefill_tokens,
        no_reuse.prefill_tokens,
    );
    assert!(
        reuse.prefix_hit_rate() > 0.5,
        "most admissions share a prefix on this trace (rate {:.2})",
        reuse.prefix_hit_rate(),
    );
    assert!(
        reuse.ttft.p95 < no_reuse.ttft.p95,
        "prefix caching must cut TTFT p95 ({:.1} vs {:.1} ms)",
        reuse.ttft.p95 * 1e3,
        no_reuse.ttft.p95 * 1e3,
    );
    assert!(
        reuse.gpu_time_s < no_reuse.gpu_time_s,
        "the same service must cost strictly less modelled GPU time"
    );
    // Both TTFT buckets are populated (the split itself is reported, not
    // ordered: under bursty overload, queueing delay — not prefill — can
    // dominate either bucket).
    assert!(reuse.ttft_hit.p95 > 0.0 && reuse.ttft_miss.p95 > 0.0);
    let ix = reuse.prefix.expect("prefix index stats attached");
    assert!(ix.hits as usize >= reuse.prefix_hits);
    assert_eq!(
        ix.inserted_pages,
        ix.evicted_pages + ix.pages_held as u64,
        "index page conservation"
    );
    // Refcounted sharing stayed sound the whole run (checked after every
    // iteration via verify_invariants) and drained leak-free at the end.
    for report in [&reuse, &no_reuse] {
        assert!(
            report.kv.conserved(),
            "[{}] KV pages leaked: {}",
            report.policy,
            report.kv
        );
        assert!(report.kv_peak_occupancy <= 1.0);
    }
    assert!(reuse.kv.shared_admits > 0, "pages were actually shared");
    for report in [&reuse, &no_reuse] {
        assert!(report.ledger.conserved(), "[{}] ledger", report.policy);
    }
    println!("\nprefix caching cuts prefill work and TTFT at equal KV budget ✓");
}
