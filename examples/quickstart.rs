//! Quickstart: accelerate a dynamically-sparse matmul with PIT.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use pit::core::ops::Pit;
use pit::gpusim::DeviceSpec;
use pit::sparse::generate;
use pit::tensor::{ops, DType, Tensor};

fn main() {
    // 1. Create a PIT engine for a modelled A100 (profiles the tile
    //    database once, like the paper's offline profiling pass).
    let pit = Pit::new(DeviceSpec::a100_80gb());

    // 2. A dynamically sparse input: 95% of the values are zero in 8x1
    //    column chunks — the kind of pattern ReLU activations produce.
    //    The pattern is only known *now*, at runtime.
    let mask = generate::granular_random(1024, 1024, 8, 1, 0.95, 42);
    let a = mask.apply(&Tensor::random([1024, 1024], 1));
    let b = Tensor::random([1024, 512], 2);

    // 3. One call: online detection + Algorithm-1 kernel selection +
    //    SRead/dense-tile/SWrite execution.
    let exec = pit.matmul_masked(&a, &mask, &b, DType::F32).expect("run");

    // 4. The result is numerically identical to the dense reference.
    let reference = ops::matmul(&a, &b).expect("reference");
    assert!(exec.output.tensor.allclose(&reference, 1e-3));

    let rule = exec.selection.rule.expect("sparse kernel chosen");
    println!("selected PIT rule   : merge axis '{}'", rule.axis.name());
    println!("micro-tile          : {}", rule.micro);
    println!("dense compute tile  : {}", rule.tile);
    println!(
        "search time         : {} us (paper §5.5: 30-100 us)",
        exec.selection.search_time.as_micros()
    );
    println!(
        "modelled latency    : {:.3} ms (dense kernel: {:.3} ms)",
        exec.output.stats.latency_s * 1e3,
        exec.selection.dense_cost_s * 1e3,
    );
    println!(
        "detection overhead  : {:.1} us (zero-copy, unordered, §3.3)",
        exec.detection.latency_s * 1e6
    );
    println!(
        "wasted computation  : {:.1}% of executed FLOPs",
        exec.output.stats.wasted_fraction() * 100.0
    );
    println!("result verified against dense reference ✓");
}
