//! Closed-loop serving load test: the same arrival trace served under
//! padding-free continuous batching (PIT), padded-to-longest batching
//! (stock frameworks) and TurboTransformers-style length bucketing.
//!
//! Eight closed-loop clients drive the threaded runtime (bounded
//! admission, one scheduler, two workers sharing a bounded JIT cache);
//! throughput is measured in real tokens per *modelled* GPU second, so
//! the comparison reflects the A100 the cost model simulates.
//!
//! ```bash
//! cargo run --release --example serving_load
//! ```

use pit::serve::{serve_trace, BatchPolicy, ServeConfig, ServingReport};
use pit::workloads::patterns::ArrivalTrace;
use pit::workloads::DatasetSpec;

fn main() {
    let spec = DatasetSpec::mnli();
    let trace = ArrivalTrace::poisson(&spec, 256, 200.0, 11);
    println!(
        "trace: {} requests, {} real tokens, lengths {}..{} ({})\n",
        trace.len(),
        trace.total_tokens(),
        trace.lens.iter().min().unwrap(),
        trace.lens.iter().max().unwrap(),
        spec.name,
    );

    let policies = [
        BatchPolicy::PaddedToLongest { max_batch: 16 },
        BatchPolicy::Bucketed {
            max_batch: 16,
            buckets: 4,
        },
        BatchPolicy::PaddingFree { token_budget: 2048 },
    ];
    let mut reports: Vec<ServingReport> = Vec::new();
    for policy in policies {
        let cfg = ServeConfig::new(policy);
        let report = serve_trace(&cfg, &trace.lens);
        println!("{report}\n");
        reports.push(report);
    }

    let padded = &reports[0];
    let bucketed = &reports[1];
    let free = &reports[2];
    println!(
        "padding-free vs padded-to-longest: {:.2}x tokens/s, waste {:.1}% -> {:.1}%",
        free.tokens_per_s() / padded.tokens_per_s(),
        padded.padding_waste() * 100.0,
        free.padding_waste() * 100.0,
    );
    // The CI smoke test leans on these: PIT's token-granularity batches
    // must strictly beat the padded rectangle on the same trace.
    assert!(
        free.padding_waste() < padded.padding_waste(),
        "padding-free must waste strictly less than padded-to-longest"
    );
    assert!(
        free.tokens_per_s() > padded.tokens_per_s(),
        "padding-free must serve strictly more tokens/s than padded-to-longest"
    );
    assert!(free.padding_waste() < bucketed.padding_waste());
    assert!(free.tokens_per_s() > bucketed.tokens_per_s());
    assert_eq!(free.real_tokens, padded.real_tokens, "no tokens dropped");
    println!("padding-free wins on both axes ✓");
}
