//! Dynamic sparse attention (paper Figure 2a / Figure 12): a
//! Longformer-style attention block computed with PIT's output-sparse SDD
//! kernel, with dynamically-chosen global tokens.
//!
//! ```bash
//! cargo run --release --example sparse_attention
//! ```

use pit::core::ops::Pit;
use pit::gpusim::DeviceSpec;
use pit::sparse::generate;
use pit::tensor::{ops, DType, Tensor};

fn main() {
    let engine = Pit::new(DeviceSpec::v100_32gb());
    let seq = 512;
    let dh = 64;

    // Queries/keys for one head; the *dynamic* part: global token
    // positions depend on the input (here: three "interesting" tokens).
    let q = Tensor::random([seq, dh], 1);
    let k_t = Tensor::random([dh, seq], 2);
    let globals = [0usize, 117, 401];
    let mask = generate::longformer_mask(seq, 64, &globals);
    println!(
        "attention pattern: {}x{}, window 64, {} global tokens, {:.1}% dense",
        seq,
        seq,
        globals.len(),
        mask.density() * 100.0
    );

    // Scores: only covered micro-tiles are computed (SDD).
    let scores = engine.sdd(&q, &k_t, &mask, DType::F32).expect("sdd");
    let reference = mask.apply(&ops::matmul(&q, &k_t).expect("ref"));
    assert!(scores.output.tensor.allclose(&reference, 1e-3));

    println!(
        "PIT SDD: {:.3} ms modelled vs {:.3} ms dense ({}x saved), verified ✓",
        scores.output.stats.latency_s * 1e3,
        scores.selection.dense_cost_s * 1e3,
        (scores.selection.dense_cost_s / scores.output.stats.latency_s).round()
    );

    // Probabilities via row softmax over covered entries, then the
    // context product S x V runs through the masked-input path (DSD).
    let probs = ops::softmax_rows(&scores.output.tensor).expect("softmax");
    let probs = mask.apply(&probs);
    let v = Tensor::random([seq, dh], 3);
    let ctx = engine
        .matmul_masked(&probs, &mask, &v, DType::F32)
        .expect("dsd");
    let ctx_ref = ops::matmul(&probs, &v).expect("ref");
    assert!(ctx.output.tensor.allclose(&ctx_ref, 1e-3));
    println!(
        "PIT DSD: {:.3} ms modelled, context verified ✓",
        ctx.output.stats.latency_s * 1e3
    );

    // ASCII sketch of the attention pattern (16x16 down-sample).
    println!("\npattern (■ = any nonzero in 32x32 block):");
    for br in 0..seq / 32 {
        let row: String = (0..seq / 32)
            .map(|bc| {
                if mask.block_any(br * 32, bc * 32, 32, 32) {
                    '■'
                } else {
                    '·'
                }
            })
            .collect();
        println!("  {row}");
    }
}
