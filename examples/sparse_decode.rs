//! Per-sequence KV sparsity: heavy-hitter retention vs dense caching,
//! end to end on a long-context trace at an equal device KV budget.
//!
//! The workload is the regime KV sparsity exists for: outputs far longer
//! than the retention budget (geometric mean 512 tokens, tail to 1536),
//! so late in every request the dense cache drags hundreds of context
//! tokens through attention per decoded token, and the KV pool — sized
//! between the heavy-hitter and dense live footprints — forces the dense
//! run to preempt while the compacted run fits.
//!
//! Both runs get the *same* KV-page budget and the same continuous
//! padding-free scheduler; the only difference is [`KvSparsityPolicy`]:
//!
//! - **dense**: every cached token is attended every step and nothing is
//!   ever dropped — footprint grows with the logical context;
//! - **heavy-hitter** (H2O + StreamingLLM retention): each step attends
//!   the attention-sink pages, a sliding window of recent tokens and a
//!   budget of heavy-hitter pages from the middle. Pages wholly outside
//!   the retained set are evicted back to the pool — refcount-aware, so
//!   shared or prefix-pinned frames stay resident — and the engine
//!   micro-tile packs the surviving rows (PIT Algorithm 1, (32,1)
//!   tiles), so attention cost scales with *attended* rather than
//!   *cached* tokens.
//!
//! Two wins at equal budget, both asserted below: decode steps are
//! cheaper (goodput tokens/s rises), and the compacted footprint means
//! the pool preempts less (fewer recompute re-prefills).
//!
//! Both reports are dumped to `BENCH_sparse.json` via
//! `DecodeReport::to_json` for CI to archive, and the heavy-hitter run is
//! re-executed with a live `TraceSink` to export a Chrome/Perfetto
//! timeline (`TRACE_decode.json`) of device steps, per-sequence lifecycle
//! events and PCIe link lanes.
//!
//! ```bash
//! cargo run --release --example sparse_decode
//! ```

use pit::gpusim::DeviceSpec;
use pit::models::ModelConfig;
use pit::serve::decode::{
    simulate_decode_trace, DecodePolicy, DecodeServeConfig, KvSparsityPolicy,
};
use pit::workloads::{DatasetSpec, DecodeSpec, DecodeTrace};

fn main() {
    let spec = DatasetSpec::mnli();
    let out = DecodeSpec::geometric(512.0, 64, 1536);
    let trace = DecodeTrace::poisson(&spec, &out, 64, 400.0, 43);
    println!(
        "trace: {} requests, {} prompt + {} output tokens \
         ({} prompts, geometric outputs mean {:.0}, tail to {})\n",
        trace.len(),
        trace.total_prompt_tokens(),
        trace.total_output_tokens(),
        spec.name,
        out.mean_out,
        out.max_out,
    );

    // Equal device KV budget — sparsity must win by shrinking footprints,
    // not by holding more memory. 896 pages sits between the two live
    // footprints: the dense run (mean context ~550 tokens across ~64 live
    // requests) outgrows it and preempts, while heavy-hitter retention
    // (~300 tokens per sequence) rides out the same trace inside it.
    let build = |sparsity| {
        DecodeServeConfig::builder(ModelConfig::opt("1.3B"), DeviceSpec::a100_80gb())
            .policy(DecodePolicy::ContinuousPaddingFree { token_budget: 256 })
            .kv_pages(896)
            .kv_sparsity(sparsity)
            .verify_invariants(true)
            .build()
            .expect("valid sparse-decode config")
    };
    let dense = simulate_decode_trace(&build(KvSparsityPolicy::Dense), &trace);
    println!("{dense}\n");
    let hh = simulate_decode_trace(
        &build(KvSparsityPolicy::HeavyHitter {
            recent: 128,
            heavy: 128,
        }),
        &trace,
    );
    println!("{hh}\n");

    println!(
        "heavy-hitter vs dense at equal KV budget: {:.2}x tokens/s \
         ({:.0} -> {:.0}), preemptions {} -> {}, recompute overhead {} -> {} tokens, \
         attended {:.1}% of cached context",
        hh.tokens_per_s() / dense.tokens_per_s(),
        dense.tokens_per_s(),
        hh.tokens_per_s(),
        dense.kv.preemptions,
        hh.kv.preemptions,
        dense.recomputed_tokens,
        hh.recomputed_tokens,
        hh.attended_fraction() * 100.0,
    );

    // One JSON document with both runs, for the CI artifact.
    let json = format!(
        "{{\"dense\":{},\"heavy_hitter\":{}}}",
        dense.to_json(),
        hh.to_json()
    );
    std::fs::write("BENCH_sparse.json", &json).expect("write BENCH_sparse.json");
    println!(
        "\nwrote both reports to BENCH_sparse.json ({} bytes)",
        json.len()
    );
    println!(
        "heavy-hitter device time: {:.1}% busy, {:.1}% MFU \
         (decode attn {:.2} s vs dense run's {:.2} s, sparse conversion {:.2} s)",
        hh.utilization.busy_fraction * 100.0,
        hh.utilization.mfu * 100.0,
        hh.ledger.decode_attention_ps as f64 / 1e12,
        dense.ledger.decode_attention_ps as f64 / 1e12,
        hh.ledger.sparse_conversion_ps as f64 / 1e12,
    );
    let prom = hh.exposition().render();
    std::fs::write("METRICS_sparse.prom", &prom).expect("write METRICS_sparse.prom");
    println!(
        "wrote Prometheus exposition to METRICS_sparse.prom ({} bytes)",
        prom.len()
    );

    // Re-run the heavy-hitter config with tracing on and export a
    // Chrome `trace_event` timeline (load it at ui.perfetto.dev) with
    // the two worst request timelines per tail metric as exemplar lanes.
    let sink = pit::trace::TraceSink::enabled();
    let (traced, exemplars) = pit::serve::decode::simulate_decode_trace_with_exemplars(
        &build(KvSparsityPolicy::HeavyHitter {
            recent: 128,
            heavy: 128,
        }),
        &trace,
        &sink,
        2,
    );
    let b = traced
        .breakdown
        .expect("traced run yields a phase breakdown");
    println!(
        "traced run: queue {:.2} ms + prefill {:.2} ms + decode {:.2} ms + \
         stall {:.2} ms = {:.2} ms mean e2e over {} finished requests",
        b.mean_queue_s * 1e3,
        b.mean_prefill_s * 1e3,
        b.mean_decode_s * 1e3,
        b.mean_stall_s * 1e3,
        b.mean_total_s() * 1e3,
        b.requests,
    );
    let blame = traced.blame.as_ref().expect("traced run carries blame");
    println!("{blame}");
    for ex in &exemplars.e2e {
        println!(
            "e2e exemplar: seq {} took {:.1} ms over {} events",
            ex.lane,
            ex.value_s * 1e3,
            ex.records.len()
        );
    }
    let chrome = pit::trace::chrome_trace_json_with_exemplars(&sink.snapshot(), &exemplars);
    std::fs::write("TRACE_decode.json", &chrome).expect("write TRACE_decode.json");
    println!(
        "wrote Chrome trace to TRACE_decode.json ({} bytes)",
        chrome.len()
    );

    // The CI smoke test leans on these assertions.
    assert_eq!(dense.requests, trace.len(), "every request served");
    assert_eq!(hh.requests, trace.len());
    assert_eq!(
        dense.real_tokens, hh.real_tokens,
        "identical goodput arrived — recompute overhead is metered separately"
    );
    assert!(
        dense.kv.preemptions > 0,
        "the pool must actually be pressured (dense preempted 0 times)"
    );
    assert!(
        hh.kv.preemptions < dense.kv.preemptions,
        "the compacted footprint must preempt less ({} vs {})",
        hh.kv.preemptions,
        dense.kv.preemptions,
    );
    assert!(
        hh.tokens_per_s() > dense.tokens_per_s(),
        "attended-scaled attention must serve more goodput per GPU-second \
         ({:.0} vs {:.0})",
        hh.tokens_per_s(),
        dense.tokens_per_s(),
    );
    assert!(hh.sparsity_dropped_pages > 0, "eviction actually ran");
    assert_eq!(
        hh.kv.sparsity_evicted_pages, hh.sparsity_dropped_pages,
        "pool and metrics agree on evictions"
    );
    assert!(hh.attended_fraction() < 1.0);
    assert_eq!(dense.attended_fraction(), 1.0, "dense attends everything");
    assert!(
        !exemplars.e2e.is_empty() && exemplars.e2e.len() <= 2,
        "exemplar capture is bounded at k"
    );
    let blame_total: f64 = blame.causes.iter().map(|c| c.e2e_s).sum();
    assert!(
        (blame_total - blame.e2e_total_s).abs() < 1e-6,
        "blame causes tile the end-to-end total"
    );
    // Both drain leak-free (invariants also checked every iteration).
    for report in [&dense, &hh] {
        assert!(
            report.kv.conserved(),
            "[{}] KV pages leaked: {}",
            report.policy,
            report.kv
        );
        assert!(report.kv_peak_occupancy <= 1.0);
        assert!(report.ledger.conserved(), "[{}] ledger", report.policy);
    }
    println!("\nkv sparsity turns a smaller read set into throughput and fewer preemptions ✓");
}
