//! Dynamic sparse training (paper Figure 2d / Figure 15): magnitude
//! iterative pruning where the weight mask moves every step, executed with
//! PIT's micro-tile kernels on real tensors and compared against the
//! training-step simulator.
//!
//! ```bash
//! cargo run --release --example sparse_training
//! ```

use pit::core::ops::Pit;
use pit::gpusim::DeviceSpec;
use pit::models::training::run_pruning_step;
use pit::models::Framework;
use pit::sparse::generate;
use pit::tensor::{ops, DType, Tensor};
use pit::workloads::DatasetSpec;

fn main() {
    // --- Part 1: one real masked weight GEMM per pruning step. ---
    let engine = Pit::new(DeviceSpec::v100_32gb());
    let x = Tensor::random([256, 512], 1);
    let mut w = Tensor::random([512, 256], 2);
    println!("step  sparsity%  kernel      modelled ms  max|err|");
    for step in 0..5 {
        // The schedule prunes more each step; the mask *moves* every step
        // (different magnitudes after simulated updates).
        let sparsity = 0.5 + 0.1 * step as f64;
        let mask = generate::magnitude_prune(&w, 32, 1, sparsity);
        let masked_t = mask.apply(&w).transpose2d().unwrap();
        let mask_t = pit::sparse::Mask::from_tensor(&masked_t);
        let exec = engine
            .matmul_masked(&masked_t, &mask_t, &x.transpose2d().unwrap(), DType::F32)
            .expect("masked gemm");
        let reference = ops::matmul(&masked_t, &x.transpose2d().unwrap()).unwrap();
        let err = exec.output.tensor.max_abs_diff(&reference).unwrap();
        let kernel = match exec.selection.rule {
            Some(r) => format!("{}-axis", r.axis.name()),
            None => "dense".to_string(),
        };
        println!(
            "{step:>4}  {:>9.0}  {kernel:<10}  {:>11.3}  {err:.2e}",
            sparsity * 100.0,
            exec.output.stats.latency_s * 1e3,
        );
        // Simulated weight update perturbs magnitudes -> next mask differs.
        for v in w.data_mut().iter_mut() {
            *v *= 0.99;
        }
    }

    // --- Part 2: full training-step comparison (Figure 15's subject). ---
    println!("\nBERT iterative pruning, 32x1 granularity, batch 32 (V100):");
    println!(
        "{:<12} {:>9}  {:>12} {:>12}",
        "sparsity%", "framework", "latency ms", "convert ms"
    );
    let lens = DatasetSpec::mnli().sample_lengths(32, 5);
    for sp in [0.5, 0.9, 0.98] {
        for fw in [Framework::PyTorch, Framework::PyTorchS, Framework::Pit] {
            let r = run_pruning_step((32, 1), sp, &lens, DeviceSpec::v100_32gb(), fw);
            println!(
                "{:<12} {:>9}  {:>12.1} {:>12.2}",
                sp * 100.0,
                r.framework,
                r.latency_ms,
                r.convert_ms
            );
        }
    }
}
