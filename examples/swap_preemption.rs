//! Swap-to-host vs recompute preemption, end to end on a KV-pressured
//! summarization trace.
//!
//! The workload is the regime where preemption policy matters: short
//! prompts (CoLA lengths — admission happily says yes) with heavy-tailed
//! long outputs (`DecodeSpec::summarization`, geometric mean 192 tokens,
//! tail to 768), so every request's KV footprint is dominated by decode
//! growth the scheduler cannot see at admission. On a pool a few
//! worst-case contexts deep, growth outruns the free list every few
//! iterations and someone must be evicted.
//!
//! Both runs get the *same* device KV-page budget and the same continuous
//! padding-free scheduler; the only difference is `PreemptPolicy`:
//!
//! - **recompute** (PR 3's policy): the victim's pages are freed and its
//!   whole context is re-prefilled on re-admission — prefill FLOPs spent
//!   re-deriving KV the system already computed;
//! - **swap-to-host**: the victim's exclusively-held pages move across
//!   the modelled PCIe link (`DeviceSpec::pcie_gbps`, 32 GB/s on the
//!   A100) into a host staging pool and stream back on re-admission —
//!   eviction DMA gates the step that reuses the frames, restores overlap
//!   later batches, and nothing is re-prefilled.
//!
//! At A100-class PCIe bandwidth moving ~3 MiB pages is far cheaper than
//! re-prefilling hundreds of tokens through a 24-layer model, so swap
//! serves the same trace with less prefill work and a better TTFT tail.
//! (`cargo bench --bench swap` sweeps `pcie_gbps` down until recompute
//! wins the trade back.)
//!
//! Both reports are dumped to `BENCH_swap.json` via
//! `DecodeReport::to_json` for CI to archive and diff with
//! `tools/bench_compare`.
//!
//! ```bash
//! cargo run --release --example swap_preemption
//! ```

use pit::gpusim::DeviceSpec;
use pit::models::ModelConfig;
use pit::serve::decode::{simulate_decode_trace, DecodePolicy, DecodeServeConfig, PreemptPolicy};
use pit::workloads::{DatasetSpec, DecodeSpec, DecodeTrace};

fn main() {
    let out = DecodeSpec::summarization();
    let trace = DecodeTrace::poisson(&DatasetSpec::cola(), &out, 96, 400.0, 43);
    println!(
        "trace: {} requests, {} prompt + {} output tokens \
         (short prompts, summarization outputs: geometric mean {} tokens, tail to {})\n",
        trace.len(),
        trace.total_prompt_tokens(),
        trace.total_output_tokens(),
        out.mean_out,
        out.max_out,
    );

    // Equal device KV budget for both policies — swap must win on the
    // PCIe trade, not by holding more GPU memory. ~3.7 worst-case
    // summarization contexts: decode growth preempts constantly.
    let base = DecodeServeConfig::builder(ModelConfig::opt("1.3B"), DeviceSpec::a100_80gb())
        .policy(DecodePolicy::ContinuousPaddingFree { token_budget: 256 })
        .kv_pages(192);
    let recompute = base
        .clone()
        .preempt(PreemptPolicy::Recompute)
        .build()
        .expect("valid recompute config");
    // Acceptance mode: the tiered pool's invariants (single-tier
    // residency, cross-tier slot conservation, no decode read of a
    // host-resident page) are checked after every iteration.
    let swap = base
        .preempt(PreemptPolicy::SwapToHost)
        .verify_invariants(true)
        .build()
        .expect("valid swap config");

    let rec = simulate_decode_trace(&recompute, &trace);
    println!("{rec}\n");
    let swp = simulate_decode_trace(&swap, &trace);
    println!("{swp}\n");

    println!(
        "swap-to-host vs recompute at equal page budget: prefill {} -> {} tokens \
         ({} context tokens kept off the re-prefill path), ttft p95 {:.1} -> {:.1} ms, \
         e2e p95 {:.2} -> {:.2} s",
        rec.prefill_tokens,
        swp.prefill_tokens,
        swp.recompute_tokens_saved,
        rec.ttft.p95 * 1e3,
        swp.ttft.p95 * 1e3,
        rec.e2e.p95,
        swp.e2e.p95,
    );

    // One JSON document with both runs, for the CI artifact.
    let json = format!(
        "{{\"recompute\":{},\"swap_to_host\":{}}}",
        rec.to_json(),
        swp.to_json()
    );
    std::fs::write("BENCH_swap.json", &json).expect("write BENCH_swap.json");
    println!(
        "\nwrote both reports to BENCH_swap.json ({} bytes)",
        json.len()
    );
    println!(
        "swap device time: {:.1}% busy, {:.1}% MFU, stalls d2h {:.2} ms / h2d {:.2} ms, \
         {:.1} MiB across the link",
        swp.utilization.busy_fraction * 100.0,
        swp.utilization.mfu * 100.0,
        swp.ledger.swap_d2h_stall_ps as f64 / 1e9,
        swp.ledger.swap_h2d_stall_ps as f64 / 1e9,
        (swp.utilization.d2h_bytes + swp.utilization.h2d_bytes) as f64 / (1 << 20) as f64,
    );
    let prom = swp.exposition().render();
    std::fs::write("METRICS_swap.prom", &prom).expect("write METRICS_swap.prom");
    println!(
        "wrote Prometheus exposition to METRICS_swap.prom ({} bytes)",
        prom.len()
    );

    // Re-run the swap config with tracing on: the exported timeline
    // carries the PCIe link lanes (one span per transfer) and
    // cause-named wait segments, and the report gains the blame summary.
    let sink = pit::trace::TraceSink::enabled();
    let traced = pit::serve::decode::simulate_decode_trace_traced(&swap, &trace, &sink);
    assert_eq!(traced.ledger, swp.ledger, "tracing perturbs nothing");
    let blame = traced.blame.as_ref().expect("traced run carries blame");
    println!("{blame}");
    let chrome = pit::trace::chrome_trace_json(&sink.snapshot());
    std::fs::write("TRACE_swap.json", &chrome).expect("write TRACE_swap.json");
    println!(
        "wrote Chrome trace to TRACE_swap.json ({} bytes)",
        chrome.len()
    );

    // The CI smoke test leans on these assertions.
    assert_eq!(rec.requests, trace.len(), "every request served");
    assert_eq!(swp.requests, trace.len());
    assert!(
        rec.kv.preemptions > 0,
        "the pool must actually be pressured (recompute preempted 0 times)"
    );
    assert!(
        swp.swap_preemptions > 0 && swp.restores > 0,
        "swap preemption must engage and restore ({} swaps, {} restores)",
        swp.swap_preemptions,
        swp.restores,
    );
    assert!(
        swp.prefill_tokens < rec.prefill_tokens,
        "swap must re-prefill fewer tokens ({} vs {})",
        swp.prefill_tokens,
        rec.prefill_tokens,
    );
    assert!(
        swp.ttft.p95 < rec.ttft.p95,
        "swap must beat recompute on TTFT p95 at A100-class PCIe \
         ({:.1} vs {:.1} ms)",
        swp.ttft.p95 * 1e3,
        rec.ttft.p95 * 1e3,
    );
    let s = swp.swap.expect("swap stats attached");
    assert_eq!(s.out_pages, swp.kv.swapped_out_pages, "link and pool agree");
    assert!(swp.restore.p95 >= swp.restore.p50 && swp.restore.p50 > 0.0);
    assert!(swp.host_peak_occupancy > 0.0 && swp.host_peak_occupancy <= 1.0);
    // Both tiers drained leak-free (invariants also checked every
    // iteration of the swap run).
    for report in [&rec, &swp] {
        assert!(
            report.kv.conserved(),
            "[{}] KV pages leaked: {}",
            report.policy,
            report.kv
        );
        assert!(report.kv_peak_occupancy <= 1.0);
    }
    assert_eq!(swp.kv.host_live_pages, 0, "host staging pool drained");
    for report in [&rec, &swp] {
        assert!(report.ledger.conserved(), "[{}] ledger", report.policy);
    }
    assert!(
        swp.utilization.d2h_bytes > 0 && swp.utilization.h2d_bytes > 0,
        "link traffic reached the utilization counters"
    );
    println!("\nswap-to-host trades PCIe bandwidth for prefill FLOPs and wins the TTFT tail ✓");
}
