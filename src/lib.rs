//! # PIT — Permutation Invariant Transformation for dynamic sparsity
//!
//! A Rust reproduction of *"PIT: Optimization of Dynamic Sparse Deep
//! Learning Models via Permutation Invariant Transformation"* (SOSP '23).
//!
//! This facade crate re-exports the workspace crates under one roof so that
//! examples and downstream users can depend on a single `pit` crate:
//!
//! - [`tensor`] — dense tensors and the tensor-expression IR.
//! - [`gpusim`] — the analytical GPU performance model (A100/V100).
//! - [`sparse`] — masks, sparsity generators and classic sparse formats.
//! - [`kernels`] — dense tiled kernels, the tile database and the baseline
//!   sparse libraries (cuSPARSE-, Sputnik-, Triton-, SparTA-style).
//! - [`core`] — the paper's contribution: PIT rules, micro-tiles,
//!   SRead/SWrite, the online sparsity detector and kernel selection.
//! - [`models`] — transformer/MoE model simulations used in the evaluation.
//! - [`workloads`] — synthetic dataset/workload generators.
//! - [`kv`] — paged KV-cache manager: fixed-size refcounted token pages,
//!   alloc/extend/free plus shared admission and copy-on-write, a host
//!   staging tier with swap_out/swap_in, occupancy/fragmentation stats,
//!   admission signal.
//! - [`prefix`] — radix-tree prompt-prefix cache mapping token-ID
//!   prefixes to shared KV pages, with LRU leaf eviction.
//! - [`swap`] — tiered-KV swap machinery: PCIe link cost model, victim
//!   page ordering, restore-on-readmission queues.
//! - [`serve`] — concurrent serving runtime: bounded admission,
//!   padding-free continuous batching (prefill and decode phase), worker
//!   pool, serving metrics.
//! - [`trace`] — observability: request-lifecycle trace sink and span
//!   reduction, streaming percentile sketches, arrival-window series and
//!   Chrome `trace_event` export.
//!
//! See `README.md` for a quickstart, the workspace layout and the crate
//! dependency graph.

pub use pit_core as core;
pub use pit_gpusim as gpusim;
pub use pit_kernels as kernels;
pub use pit_kv as kv;
pub use pit_models as models;
pub use pit_prefix as prefix;
pub use pit_serve as serve;
pub use pit_sparse as sparse;
pub use pit_swap as swap;
pub use pit_tensor as tensor;
pub use pit_trace as trace;
pub use pit_workloads as workloads;

/// Crate version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
