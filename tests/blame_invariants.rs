//! Property tests for the causal-blame observability layer.
//!
//! The contract under test is *exact tiling*: the blame analyzer splits
//! every finished request's latency into causal categories, and those
//! tiles must sum back to the measured latency to floating-point
//! accuracy — `Σ ttft_by_cause == first_token - arrival` and
//! `Σ e2e_by_cause == end - arrival` — for every scheduling regime the
//! simulator supports (dense and sparse attention, recompute and swap
//! preemption, prefix caching, static padding). A residual would mean a
//! gap in the trace was attributed to nobody (or to two owners), and the
//! percentile tables `trace_explain` prints would silently lie.
//!
//! The exemplar reservoir rides the same stream, so it is held to the
//! same replay discipline here: two runs produce identical exemplar
//! sets, the top-k bound holds, and collection survives a disabled or
//! head-sampled sink without perturbing the simulation.

use pit::gpusim::DeviceSpec;
use pit::models::ModelConfig;
use pit::serve::decode::{
    simulate_decode_trace, simulate_decode_trace_traced, simulate_decode_trace_with_exemplars,
    DecodePolicy, DecodeServeConfig, DecodeServeConfigBuilder, KvSparsityPolicy, PreemptPolicy,
};
use pit::trace::{blame_spans, BlameBreakdown, TraceSink};
use pit::workloads::{ArrivalTrace, DatasetSpec, DecodeSpec, DecodeTrace, SharedPrefixSpec};
use proptest::prelude::*;

/// Tiles must close to well under a virtual-clock tick; 1e-9 s leaves
/// room only for benign f64 summation error.
const TILING_EPS: f64 = 1e-9;

/// A 2-layer OPT keeps the analytic per-step pass fast under proptest.
fn small_builder(policy: DecodePolicy) -> DecodeServeConfigBuilder {
    let mut model = ModelConfig::opt("1.3B");
    model.layers = 2;
    DecodeServeConfig::builder(model, DeviceSpec::a100_80gb()).policy(policy)
}

/// The scheduling regimes whose stall paths emit distinct wait causes.
#[derive(Debug, Clone, Copy)]
enum Scenario {
    /// Continuous padding-free, dense attention, no pressure.
    Dense,
    /// Sliding-window KV sparsity trims the decode read set.
    SlidingWindow,
    /// Heavy-hitter KV sparsity.
    HeavyHitter,
    /// Pool a few contexts deep; victims re-prefill on re-admission.
    RecomputePressure,
    /// Same pressure; victims swap over the modelled PCIe link.
    SwapPressure,
    /// Radix-indexed prompt reuse on a shared-prefix trace.
    PrefixCached,
    /// The padded rectangle (static batching).
    StaticPadded,
}

const SCENARIOS: [Scenario; 7] = [
    Scenario::Dense,
    Scenario::SlidingWindow,
    Scenario::HeavyHitter,
    Scenario::RecomputePressure,
    Scenario::SwapPressure,
    Scenario::PrefixCached,
    Scenario::StaticPadded,
];

fn config(s: Scenario) -> DecodeServeConfig {
    let continuous = DecodePolicy::ContinuousPaddingFree { token_budget: 128 };
    match s {
        Scenario::Dense => small_builder(continuous),
        Scenario::SlidingWindow => {
            small_builder(continuous).kv_sparsity(KvSparsityPolicy::SlidingWindow { recent: 32 })
        }
        Scenario::HeavyHitter => {
            small_builder(continuous).kv_sparsity(KvSparsityPolicy::HeavyHitter {
                recent: 16,
                heavy: 16,
            })
        }
        // One worst-case summarization context plus headroom: decode
        // growth must evict, so the preemption wait causes fire.
        Scenario::RecomputePressure => {
            small_builder(DecodePolicy::ContinuousPaddingFree { token_budget: 256 })
                .kv_pages(64)
                .preempt(PreemptPolicy::Recompute)
        }
        Scenario::SwapPressure => {
            small_builder(DecodePolicy::ContinuousPaddingFree { token_budget: 256 })
                .kv_pages(64)
                .preempt(PreemptPolicy::SwapToHost)
        }
        Scenario::PrefixCached => {
            small_builder(DecodePolicy::ContinuousPaddingFree { token_budget: 256 })
                .prefix_caching(true)
                .kv_pages(64)
        }
        Scenario::StaticPadded => small_builder(DecodePolicy::StaticPadded { max_batch: 16 }),
    }
    .build()
    .expect("valid scenario config")
}

fn workload(s: Scenario, n: usize, seed: u64) -> DecodeTrace {
    match s {
        // Short prompts with heavy-tailed outputs: KV growth outruns the
        // free list, so preemption actually engages.
        Scenario::RecomputePressure | Scenario::SwapPressure => DecodeTrace::poisson(
            &DatasetSpec::cola(),
            &DecodeSpec::summarization(),
            n,
            500.0,
            seed,
        ),
        // Bursty shared-prefix arrivals: admissions hit the radix index.
        Scenario::PrefixCached => {
            let spec = SharedPrefixSpec::assistants();
            let arrivals = ArrivalTrace::bursty(&DatasetSpec::mnli(), n, 400.0, 0.2, 0.4, seed);
            spec.decode_trace(
                &DecodeSpec::geometric(24.0, 1, 96),
                arrivals.arrival_s,
                seed,
            )
        }
        _ => DecodeTrace::poisson(
            &DatasetSpec::mnli(),
            &DecodeSpec::geometric(24.0, 1, 96),
            n,
            400.0,
            seed,
        ),
    }
}

/// Asserts the exact-tiling contract on one request's breakdown.
fn assert_tiles(lane: u64, b: &BlameBreakdown) {
    for (i, &t) in b.ttft_by_cause.iter().enumerate() {
        assert!(
            t >= 0.0 && b.e2e_by_cause[i] >= 0.0,
            "lane {lane}: negative tile in category {i}"
        );
    }
    if let Some(ft) = b.first_token_s {
        let residual = (b.ttft_total_s() - (ft - b.arrival_s)).abs();
        assert!(
            residual < TILING_EPS,
            "lane {lane}: TTFT tiles leave a {residual:e} s residual \
             (sum {} vs measured {})",
            b.ttft_total_s(),
            ft - b.arrival_s,
        );
    }
    let residual = (b.e2e_total_s() - (b.end_s - b.arrival_s)).abs();
    assert!(
        residual < TILING_EPS,
        "lane {lane}: e2e tiles leave a {residual:e} s residual \
         (sum {} vs measured {})",
        b.e2e_total_s(),
        b.end_s - b.arrival_s,
    );
}

proptest! {
    // Each case runs a full (small) simulation; keep the budget modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact tiling holds for every request, in every scheduling regime,
    /// at every seed — and tracing never perturbs the simulation.
    #[test]
    fn blame_tiles_latency_exactly(
        scenario_ix in 0usize..SCENARIOS.len(),
        n in 8usize..=24,
        seed in 1u64..=512,
    ) {
        let scenario = SCENARIOS[scenario_ix];
        let cfg = config(scenario);
        let trace = workload(scenario, n, seed);

        let sink = TraceSink::enabled();
        let traced = simulate_decode_trace_traced(&cfg, &trace, &sink);
        let spans = blame_spans(&sink.snapshot());

        // Every request got a lifecycle and finished it.
        prop_assert_eq!(spans.len(), trace.len(), "{:?}: one span per request", scenario);
        let mut finished = 0u64;
        for (&lane, b) in &spans {
            prop_assert!(b.finished, "{:?}: lane {} never finished", scenario, lane);
            prop_assert!(
                b.first_token_s.is_some(),
                "{:?}: lane {} finished without a first token", scenario, lane
            );
            assert_tiles(lane, b);
            finished += 1;
        }

        // The report's aggregate saw the same population and mass.
        let blame = traced.blame.as_ref().expect("traced run carries blame");
        prop_assert_eq!(blame.requests, finished);
        let span_e2e: f64 = spans.values().map(BlameBreakdown::e2e_total_s).sum();
        prop_assert!(
            (blame.e2e_total_s - span_e2e).abs() < 1e-6,
            "{:?}: aggregate e2e {} != span sum {}", scenario, blame.e2e_total_s, span_e2e
        );

        // Observation is free: the traced report minus the trace-derived
        // blocks is the untraced report, bit for bit.
        let free = simulate_decode_trace(&cfg, &trace);
        let mut stripped = traced.clone();
        stripped.breakdown = None;
        stripped.blame = None;
        prop_assert_eq!(stripped, free, "{:?}: tracing perturbed the run", scenario);
    }
}

#[test]
fn exemplar_reservoir_is_deterministic_and_bounded() {
    let trace = workload(Scenario::SwapPressure, 32, 23);
    let cfg = config(Scenario::SwapPressure);
    let k = 3usize;

    let sink_a = TraceSink::enabled();
    let (report_a, ex_a) = simulate_decode_trace_with_exemplars(&cfg, &trace, &sink_a, k);
    let sink_b = TraceSink::enabled();
    let (report_b, ex_b) = simulate_decode_trace_with_exemplars(&cfg, &trace, &sink_b, k);

    // Bit-deterministic replay: same reports, same exemplars, same
    // captured timelines (record for record).
    assert_eq!(report_a, report_b);
    assert_eq!(ex_a, ex_b);

    for (name, list) in [("ttft", &ex_a.ttft), ("itl", &ex_a.itl), ("e2e", &ex_a.e2e)] {
        assert!(!list.is_empty(), "{name}: pressured run must have tails");
        assert!(list.len() <= k, "{name}: reservoir exceeded k={k}");
        for pair in list.windows(2) {
            assert!(
                pair[0].value_s >= pair[1].value_s,
                "{name}: exemplars not ranked worst-first"
            );
        }
        for ex in list {
            assert!(
                !ex.records.is_empty(),
                "{name}: exemplar lane {} kept no timeline",
                ex.lane
            );
            assert!(
                ex.records.iter().all(|r| r.lane == ex.lane),
                "{name}: foreign records leaked into lane {}",
                ex.lane
            );
        }
    }
}

#[test]
fn exemplars_survive_disabled_and_sampled_sinks() {
    let trace = workload(Scenario::Dense, 32, 31);
    let cfg = config(Scenario::Dense);
    let k = 2usize;

    let full_sink = TraceSink::enabled();
    let (full_report, full_ex) = simulate_decode_trace_with_exemplars(&cfg, &trace, &full_sink, k);

    // The reservoir buffers timelines independently of the sink, so the
    // same exemplars come back when the sink drops records — whether
    // head-sampled (1-in-5 lanes) or fully disabled.
    let sampled_sink = TraceSink::enabled().with_sampling(5);
    let (sampled_report, sampled_ex) =
        simulate_decode_trace_with_exemplars(&cfg, &trace, &sampled_sink, k);
    assert_eq!(
        full_ex, sampled_ex,
        "head sampling must not starve exemplars"
    );

    let disabled_sink = TraceSink::disabled();
    let (disabled_report, disabled_ex) =
        simulate_decode_trace_with_exemplars(&cfg, &trace, &disabled_sink, k);
    assert_eq!(
        full_ex, disabled_ex,
        "a disabled sink must not starve exemplars"
    );

    // The sink kept strictly fewer sequence records under sampling, and
    // none at all when disabled — observability stayed opt-in.
    let seq_records = |sink: &TraceSink| {
        sink.snapshot()
            .iter()
            .filter(|r| r.lane < pit::trace::RESERVED_LANES)
            .count()
    };
    assert!(seq_records(&sampled_sink) < seq_records(&full_sink));
    assert!(!disabled_sink.is_enabled());

    // And none of it perturbed the simulation: modulo the trace-derived
    // report blocks, all three runs are the same run.
    let strip = |mut r: pit::serve::DecodeReport| {
        r.breakdown = None;
        r.blame = None;
        r
    };
    let full = strip(full_report);
    assert_eq!(full, strip(sampled_report));
    assert_eq!(full, strip(disabled_report));
}

#[test]
fn zero_k_disables_the_reservoir() {
    let trace = workload(Scenario::Dense, 16, 7);
    let cfg = config(Scenario::Dense);
    let sink = TraceSink::enabled();
    let (_, ex) = simulate_decode_trace_with_exemplars(&cfg, &trace, &sink, 0);
    assert!(ex.ttft.is_empty() && ex.itl.is_empty() && ex.e2e.is_empty());
}
