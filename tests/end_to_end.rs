//! Cross-crate integration tests: the full PIT pipeline (detection →
//! selection → SRead/dense-tile/SWrite execution) against the dense oracle,
//! across sparsity regimes, dtypes and models.

use pit::core::ops::Pit;
use pit::gpusim::DeviceSpec;
use pit::models::{run_inference, Framework, ModelConfig};
use pit::sparse::{generate, Mask};
use pit::tensor::{ops, DType, Tensor};
use pit::workloads::DatasetSpec;

fn engine() -> Pit {
    Pit::new(DeviceSpec::a100_80gb())
}

#[test]
fn pipeline_correct_across_sparsity_regimes() {
    let pit = engine();
    let b = Tensor::random([192, 96], 99);
    for (gh, gw, sp) in [
        (1usize, 1usize, 0.5),
        (1, 1, 0.99),
        (8, 1, 0.9),
        (32, 1, 0.95),
        (1, 32, 0.9),
        (16, 16, 0.8),
    ] {
        let mask = generate::granular_random(256, 192, gh, gw, sp, 7);
        let a = mask.apply(&Tensor::random([256, 192], 8));
        let exec = pit.matmul_masked(&a, &mask, &b, DType::F32).unwrap();
        let reference = ops::matmul(&a, &b).unwrap();
        assert!(
            exec.output.tensor.allclose(&reference, 1e-3),
            "granularity ({gh},{gw}) sparsity {sp} diverged"
        );
    }
}

#[test]
fn pipeline_correct_on_sequence_padding() {
    let pit = engine();
    let lens = DatasetSpec::mnli().sample_lengths(8, 1);
    let max_len = 128;
    let mask = generate::token_row_mask(&lens, max_len, 64);
    let a = mask.apply(&Tensor::random([8 * max_len, 64], 2));
    let b = Tensor::random([64, 48], 3);
    let exec = pit.matmul_masked(&a, &mask, &b, DType::F32).unwrap();
    let reference = ops::matmul(&a, &b).unwrap();
    assert!(exec.output.tensor.allclose(&reference, 1e-3));
}

#[test]
fn attention_sdd_dsd_roundtrip() {
    // A full sparse attention head: SDD scores -> softmax -> DSD context,
    // identical to the dense computation on covered positions.
    let pit = engine();
    let (seq, dh) = (128usize, 32usize);
    let q = Tensor::random([seq, dh], 4);
    let k_t = Tensor::random([dh, seq], 5);
    let v = Tensor::random([seq, dh], 6);
    let mask = generate::longformer_mask(seq, 16, &[0, 77]);

    let scores = pit.sdd(&q, &k_t, &mask, DType::F32).unwrap();
    let probs = mask.apply(&ops::softmax_rows(&scores.output.tensor).unwrap());
    let ctx = pit.matmul_masked(&probs, &mask, &v, DType::F32).unwrap();

    let ref_scores = mask.apply(&ops::matmul(&q, &k_t).unwrap());
    let ref_probs = mask.apply(&ops::softmax_rows(&ref_scores).unwrap());
    let ref_ctx = ops::matmul(&ref_probs, &v).unwrap();
    assert!(ctx.output.tensor.allclose(&ref_ctx, 1e-3));
}

#[test]
fn fp16_path_matches_fp32_numerics() {
    // Storage is f32 either way; the fp16 path must select tensor-core
    // tiles without changing results.
    let pit = engine();
    let mask = generate::granular_random(128, 128, 8, 1, 0.9, 9);
    let a = mask.apply(&Tensor::random([128, 128], 10));
    let b = Tensor::random([128, 64], 11);
    let f32 = pit.matmul_masked(&a, &mask, &b, DType::F32).unwrap();
    let f16 = pit.matmul_masked(&a, &mask, &b, DType::F16).unwrap();
    assert!(f32.output.tensor.allclose(&f16.output.tensor, 1e-3));
}

#[test]
fn headline_speedups_hold_end_to_end() {
    // The abstract's claim: PIT accelerates dynamic sparsity by up to 5.9x
    // (avg 2.43x) over SOTA compilers. Check PIT beats every baseline on
    // its flagship workload.
    let cfg = ModelConfig::switch_transformer(128);
    let lens = DatasetSpec::mnli().sample_lengths(32, 3);
    let run = |fw| run_inference(&cfg, &lens, DeviceSpec::a100_80gb(), DType::F16, fw, 1, 3);
    let pit = run(Framework::Pit);
    for fw in [
        Framework::PyTorch,
        Framework::PyTorchS,
        Framework::Tutel,
        Framework::DeepSpeed,
        Framework::MegaBlocks,
    ] {
        let other = run(fw);
        assert!(
            other.latency_ms > pit.latency_ms,
            "{} ({} ms) should be slower than PIT ({} ms)",
            other.framework,
            other.latency_ms,
            pit.latency_ms
        );
    }
}

#[test]
fn dense_inputs_cost_no_more_than_dense_plus_detection() {
    // §3.2's "seamless fallback": on dense data PIT must not be slower
    // than the dense library path it wraps.
    let pit = engine();
    let a = Tensor::random([512, 512], 12);
    let mask = Mask::ones(512, 512);
    let b = Tensor::random([512, 512], 13);
    let exec = pit.matmul_masked(&a, &mask, &b, DType::F32).unwrap();
    let dense = pit.matmul_dense(&a, &b, DType::F32).unwrap();
    assert!(exec.selection.rule.is_none());
    assert!(exec.output.stats.latency_s <= dense.stats.latency_s * 1.001);
}

#[test]
fn empty_input_is_handled() {
    let pit = engine();
    let a = Tensor::zeros([64, 64]);
    let mask = Mask::zeros(64, 64);
    let b = Tensor::random([64, 32], 14);
    let exec = pit.matmul_masked(&a, &mask, &b, DType::F32).unwrap();
    assert!(exec.output.tensor.allclose(&Tensor::zeros([64, 32]), 0.0));
}
