//! The `pit::` re-export surface: everything a downstream user needs for the
//! paper pipeline — tensor construction → online detection → Algorithm-1
//! kernel selection → sparse execution — must be reachable through the single
//! facade crate, with no direct `pit_*` dependencies.

use pit::core::detector::detect_mask;
use pit::core::microtile::MicroTile;
use pit::core::ops::Pit;
use pit::core::selection::select_kernel;
use pit::gpusim::{CostModel, DeviceSpec};
use pit::kernels::tiles::TileDb;
use pit::sparse::{generate, Mask};
use pit::tensor::{ops, DType, Tensor};

#[test]
fn facade_exposes_the_full_pipeline() {
    // Tensor construction.
    let mask = generate::granular_random(128, 96, 8, 1, 0.9, 21);
    let a = mask.apply(&Tensor::random([128, 96], 22));
    let b = Tensor::random([96, 64], 23);

    // Online detection.
    let cost = CostModel::new(DeviceSpec::a100_80gb());
    let index = detect_mask(&cost, &mask, MicroTile::new(8, 1), 2);
    assert!(!index.is_empty());
    assert!(index.stats.latency_s > 0.0);

    // Algorithm-1 kernel selection.
    let db = TileDb::profile(&cost);
    let selection = select_kernel(&cost, &db, std::slice::from_ref(&mask), 64, DType::F32);
    assert!(selection.predicted_cost_s > 0.0);
    assert!(selection.predicted_cost_s <= selection.dense_cost_s);

    // Sparse execution through the high-level entry point, checked against
    // the dense oracle.
    let pit = Pit::new(DeviceSpec::a100_80gb());
    let exec = pit.matmul_masked(&a, &mask, &b, DType::F32).unwrap();
    let reference = ops::matmul(&a, &b).unwrap();
    assert!(exec.output.tensor.allclose(&reference, 1e-3));
}

#[test]
fn facade_shorthand_reexports_are_usable() {
    // The curated shorthand re-exports (crate roots), as the examples use
    // them: types must be nameable without digging into submodules.
    let mask: Mask = Mask::ones(16, 16);
    assert_eq!(mask.nnz(), 256);

    let t = Tensor::zeros([4, 4]);
    assert_eq!(t.sparsity(), 1.0);

    let spec: DeviceSpec = DeviceSpec::v100_32gb();
    let _cost = CostModel::new(spec);

    assert!(!pit::VERSION.is_empty());
}
