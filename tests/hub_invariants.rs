//! Live-observability invariants across the whole stack: a scrape
//! endpoint attached to an in-flight replay must (1) never perturb the
//! replay — the final report is byte-identical with and without the hub,
//! even while scrapers hammer the endpoint; (2) serve only well-formed
//! payloads — every `/metrics` body round-trips through
//! `parse_exposition`, `/slo` and `/series` parse as JSON; and (3) show
//! monotone counters — a later scrape never reports a smaller value for
//! any counter sample.

use pit::gpusim::DeviceSpec;
use pit::models::ModelConfig;
use pit::serve::decode::{
    simulate_decode_trace_observed, simulate_decode_trace_traced, DecodePolicy, DecodeServeConfig,
};
use pit::serve::{serve_trace_arrivals_observed, AdmissionMode, BatchPolicy, ServeConfig};
use pit::trace::{
    parse_exposition, HubConfig, JsonValue, MetricsHub, ScrapeServer, SloTarget, TraceSink,
};
use pit::workloads::{ArrivalTrace, DatasetSpec, DecodeSpec, DecodeTrace};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A 2-layer OPT keeps the analytic per-step pass fast in CI.
fn small_decode_cfg(token_budget: usize) -> DecodeServeConfig {
    let mut model = ModelConfig::opt("1.3B");
    model.layers = 2;
    DecodeServeConfig::builder(model, DeviceSpec::a100_80gb())
        .policy(DecodePolicy::ContinuousPaddingFree { token_budget })
        .build()
        .expect("valid test config")
}

fn decode_trace(n: usize) -> DecodeTrace {
    DecodeTrace::poisson(
        &DatasetSpec::mnli(),
        &DecodeSpec::geometric(24.0, 1, 96),
        n,
        400.0,
        31,
    )
}

fn get(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect scrape endpoint");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("write");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    let (head, body) = out.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{path}: {head}");
    body.to_string()
}

/// Every counter sample in a parsed `/metrics` body, keyed by family +
/// suffix + labels so labelled families compare sample-by-sample.
fn counter_values(body: &str) -> BTreeMap<String, f64> {
    let expo = parse_exposition(body).expect("scrape parses");
    let mut out = BTreeMap::new();
    for fam in expo.families() {
        if fam.kind != pit::trace::MetricKind::Counter {
            continue;
        }
        for s in &fam.samples {
            let labels: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.insert(
                format!("{}{}{{{}}}", fam.name, s.suffix, labels.join(",")),
                s.value,
            );
        }
    }
    out
}

#[test]
fn hub_and_concurrent_scrapers_leave_the_report_byte_identical() {
    let cfg = small_decode_cfg(128);
    let trace = decode_trace(48);

    // Reference: hub-free traced run.
    let sink = TraceSink::enabled();
    let free = simulate_decode_trace_traced(&cfg, &trace, &sink);

    // Hubbed run with a live endpoint being hammered from two threads
    // for the whole duration of the replay.
    let hub = Arc::new(MetricsHub::new(HubConfig {
        window_s: 0.25,
        ring_capacity: 64,
        slo: Some(SloTarget {
            ttft_s: 0.5,
            itl_s: 0.05,
            objective: 0.99,
        }),
        drift: None,
    }));
    let server = ScrapeServer::bind(hub.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let hubbed = std::thread::scope(|s| {
        for path in ["/metrics", "/slo", "/series"] {
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let body = get(addr, path);
                    match path {
                        "/metrics" => {
                            parse_exposition(&body).expect("mid-run scrape parses");
                        }
                        _ => {
                            JsonValue::parse(&body).expect("mid-run JSON parses");
                        }
                    }
                }
            });
        }
        let hub_sink = TraceSink::enabled();
        let (hubbed, _) = simulate_decode_trace_observed(&cfg, &trace, &hub_sink, 0, Some(&hub));
        stop.store(true, Ordering::Relaxed);
        hubbed
    });
    let served = server.shutdown();
    assert!(served > 0, "scrapers reached the endpoint");
    assert_eq!(
        hubbed.to_json(),
        free.to_json(),
        "hub + concurrent scrapers must not change the report by one byte"
    );
}

#[test]
fn scrapes_round_trip_and_counters_never_decrease() {
    let cfg = small_decode_cfg(96);
    let trace = decode_trace(64);
    let hub = Arc::new(MetricsHub::with_defaults());
    let server = ScrapeServer::bind(hub.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let scrapes = std::thread::scope(|s| {
        let scraper = s.spawn(move || {
            let mut bodies = Vec::new();
            // Keep scraping until the run completes (a fast replay may
            // finish before the first scrape), then take two more —
            // counters must hold steady across post-run scrapes too.
            let mut after_done = 0;
            while after_done < 3 {
                let body = get(addr, "/metrics");
                // Match the sample line, not the HELP line (whose text
                // also starts with "1").
                if body.contains("\npit_hub_run_complete 1\n") {
                    after_done += 1;
                }
                bodies.push(body);
                assert!(
                    JsonValue::parse(&get(addr, "/slo")).is_ok(),
                    "/slo parses mid-run"
                );
                assert!(
                    JsonValue::parse(&get(addr, "/series")).is_ok(),
                    "/series parses mid-run"
                );
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            bodies
        });
        let sink = TraceSink::disabled();
        simulate_decode_trace_observed(&cfg, &trace, &sink, 0, Some(&hub));
        scraper.join().expect("scraper panicked")
    });
    server.shutdown();

    assert!(
        scrapes.len() >= 2,
        "at least an in-flight and a final scrape"
    );
    let mut prev: Option<BTreeMap<String, f64>> = None;
    for body in &scrapes {
        // render ∘ parse is the identity on every served body.
        let expo = parse_exposition(body).expect("scrape parses");
        assert_eq!(&expo.render(), body, "scrape round-trips");
        let cur = counter_values(body);
        if let Some(prev) = prev.as_ref() {
            for (k, v) in prev {
                let now = cur
                    .get(k)
                    .unwrap_or_else(|| panic!("counter {k} disappeared between scrapes"));
                assert!(now >= v, "counter {k} went backwards: {v} -> {now}");
            }
        }
        prev = Some(cur);
    }
    let last = prev.expect("at least one scrape");
    assert_eq!(
        last.get("pit_hub_finished_total{}").copied(),
        Some(trace.len() as f64),
        "every request finished in the final scrape"
    );
}

#[test]
fn threaded_runtime_publishes_consistent_hub_totals() {
    let mut cfg = ServeConfig::new(BatchPolicy::PaddingFree { token_budget: 1024 });
    cfg.model.layers = 2;
    cfg.admission = AdmissionMode::Block;
    // High rate so the replay finishes quickly in CI.
    let trace = ArrivalTrace::poisson(&DatasetSpec::mnli(), 48, 2000.0, 29);
    let hub = Arc::new(MetricsHub::with_defaults());
    let report = serve_trace_arrivals_observed(&cfg, &trace, Some(&hub));
    assert_eq!(report.requests, trace.len());

    let body = hub.render();
    let expo = parse_exposition(&body).expect("hub renders a valid exposition");
    assert_eq!(expo.render(), body);
    let counters = counter_values(&body);
    assert_eq!(
        counters.get("pit_hub_admitted_total{}").copied(),
        Some(trace.len() as f64),
        "submitter published every admission"
    );
    assert_eq!(
        counters.get("pit_hub_finished_total{}").copied(),
        Some(report.requests as f64),
        "workers published every completion"
    );
    assert_eq!(
        counters.get("pit_hub_batch_real_tokens_total{}").copied(),
        Some(report.real_tokens as f64),
        "hub token counter agrees with the report"
    );
    assert_eq!(counters.get("pit_hub_rejected_total{}").copied(), None);
    // The whole-run gauge block marks the run complete (sample line,
    // not the HELP line).
    assert!(
        body.contains("\npit_hub_run_complete 1\n"),
        "finish() sealed the run"
    );
}
