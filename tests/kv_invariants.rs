//! Property-based tests (proptest) for the paged KV-cache allocator and
//! its use by the decode runtime: page conservation (allocated = freed +
//! live), no double-frees, occupancy bounds, refcounted sharing (no page
//! freed while referenced, copy-on-write never mutates a shared page),
//! tiered residency under swap-out/swap-in (no double residency,
//! refcounts survive tier moves), sparsity eviction (page-aligned
//! shrinkage that never frees shared or pinned frames and rejects
//! illegal picks atomically), and end-of-run leak freedom across both
//! tiers under completion and preemption.

use pit::gpusim::DeviceSpec;
use pit::kv::{KvConfig, KvError, PageLocation, PagedKvCache};
use pit::models::ModelConfig;
use pit::serve::decode::{
    simulate_decode_trace, DecodePolicy, DecodeServeConfig, KvSparsityPolicy, PreemptPolicy,
};
use pit::workloads::{ArrivalTrace, DatasetSpec, DecodeSpec, DecodeTrace, SharedPrefixSpec};
use proptest::prelude::*;

/// The decode-runtime page size every end-to-end proptest pins, so pool
/// sizes computed in tokens stay page-accurate.
const PAGE_SIZE: usize = 16;

/// Builder seeded like the proptests' old flat configs: depth-1 OPT-1.3B
/// on the modelled A100 (cost-model depth is irrelevant to invariants),
/// invariant checks after every iteration.
fn proptest_builder(policy: DecodePolicy) -> pit::serve::decode::DecodeServeConfigBuilder {
    let mut model = ModelConfig::opt("1.3B");
    model.layers = 1;
    DecodeServeConfig::builder(model, DeviceSpec::a100_80gb())
        .policy(policy)
        .page_size(PAGE_SIZE)
        .verify_invariants(true)
}

/// Deterministic operation stream driver: interprets a seed as a sequence
/// of alloc/extend/free/preempt/share/retain/release/swap/sparsity-evict
/// operations over a bounded id space and checks the pool invariants
/// after every step.
/// Returns the pool and the externally retained pages still to release
/// (the prefix-index mirror).
fn drive_ops(
    page_size: usize,
    pages: usize,
    host_pages: usize,
    ids: u64,
    ops: usize,
    seed: u64,
) -> (PagedKvCache, Vec<u32>) {
    let mut kv = PagedKvCache::new(KvConfig::new(page_size, pages).with_host_pages(host_pages));
    let mut retained: Vec<u32> = Vec::new();
    let mut h = seed | 1;
    let mut next = || {
        // xorshift64* — deterministic op stream per seed.
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17;
        h.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for _ in 0..ops {
        let r = next();
        let id = (r >> 8) % ids;
        let tokens = (r >> 32) as usize % (3 * page_size) + 1;
        let live_before = kv.live_pages();
        let free_before = kv.free_pages();
        match r % 10 {
            0 => {
                let was_live = kv.seq_tokens(id).is_some();
                match kv.alloc(id, tokens) {
                    Ok(n) => {
                        assert!(!was_live, "alloc succeeded on a live sequence");
                        assert_eq!(n, kv.config().pages_for(tokens));
                        assert_eq!(kv.live_pages(), live_before + n);
                    }
                    Err(KvError::AlreadyAllocated(e)) => assert_eq!(e, id),
                    Err(KvError::OutOfPages { needed, free }) => {
                        assert_eq!(free, free_before);
                        assert!(needed > free, "atomic failure must be real");
                        assert_eq!(kv.live_pages(), live_before, "failed alloc mutated pool");
                    }
                    Err(e) => panic!("unexpected alloc error {e:?}"),
                }
            }
            1 => {
                let held = kv.seq_tokens(id);
                // If growth will write into a partially filled *shared*
                // page, extend must copy it, never mutate it in place.
                let cow_source = held.filter(|&u| u % page_size != 0).and_then(|u| {
                    let p = kv.seq_pages(id).expect("live")[u / page_size];
                    (kv.page_refs(p) > 1).then_some((u / page_size, p, kv.page_written(p)))
                });
                let swapped_held = kv.seq_host_pages(id);
                match kv.extend(id, tokens) {
                    Ok(n) => {
                        let before = held.expect("extend succeeded on unknown seq");
                        assert_eq!(swapped_held, 0, "extend succeeded on a swapped seq");
                        assert_eq!(kv.seq_tokens(id), Some(before + tokens));
                        assert_eq!(kv.live_pages(), live_before + n);
                        if let Some((bi, p, written)) = cow_source {
                            let now = kv.seq_pages(id).expect("live")[bi];
                            assert_ne!(now, p, "copy-on-write replaced the shared page");
                            assert!(kv.page_refs(p) >= 1, "shared page stays live");
                            assert_eq!(
                                kv.page_written(p),
                                written,
                                "copy-on-write never mutates a shared page"
                            );
                        }
                    }
                    Err(KvError::UnknownSeq(_)) => assert!(held.is_none()),
                    Err(KvError::OutOfPages { .. }) => {
                        assert_eq!(kv.seq_tokens(id), held, "failed extend mutated seq");
                        assert_eq!(kv.live_pages(), live_before);
                    }
                    Err(KvError::SwappedOut(s)) => {
                        assert_eq!(s, id);
                        assert!(swapped_held > 0, "only swapped seqs refuse writes");
                        assert_eq!(kv.seq_tokens(id), held, "failed extend mutated seq");
                    }
                    Err(e) => panic!("unexpected extend error {e:?}"),
                }
            }
            2 => {
                let was_live = kv.seq_tokens(id).is_some();
                // Pages another holder also references must survive this
                // free with one reference fewer.
                let shared: Vec<(u32, u32)> = kv
                    .seq_pages(id)
                    .map(|pages| {
                        pages
                            .iter()
                            .map(|&p| (p, kv.page_refs(p)))
                            .filter(|&(_, r)| r > 1)
                            .collect()
                    })
                    .unwrap_or_default();
                let held_pages = kv.seq_pages(id).map(<[u32]>::len).unwrap_or(0);
                let host_held = kv.seq_host_pages(id);
                let host_before = kv.host_live_pages();
                match kv.free(id) {
                    Ok(n) => {
                        assert!(was_live);
                        assert!(n <= held_pages, "cannot free more than it held");
                        // Host-resident pages (always exclusive) free with
                        // the sequence but return host frames, not device
                        // ones.
                        assert_eq!(kv.free_pages(), free_before + n - host_held);
                        assert_eq!(kv.host_live_pages(), host_before - host_held);
                        for &(p, r) in &shared {
                            assert_eq!(kv.page_refs(p), r - 1);
                            assert!(kv.page_refs(p) >= 1, "no page freed while referenced");
                        }
                        // Freed exactly once: a second free must fail.
                        assert_eq!(kv.free(id), Err(KvError::UnknownSeq(id)));
                    }
                    Err(KvError::UnknownSeq(_)) => assert!(!was_live),
                    Err(e) => panic!("unexpected free error {e:?}"),
                }
            }
            3 => {
                let preemptions_before = kv.stats().preemptions;
                match kv.preempt(id) {
                    Ok(_) => assert_eq!(kv.stats().preemptions, preemptions_before + 1),
                    Err(KvError::UnknownSeq(_)) => {
                        assert_eq!(kv.stats().preemptions, preemptions_before)
                    }
                    Err(e) => panic!("unexpected preempt error {e:?}"),
                }
            }
            4 => {
                // Shared admission: a fresh id adopts a live donor's
                // written prefix without taking pages from the pool.
                let donor = (r >> 16) % ids;
                let Some(donor_used) = kv.seq_tokens(donor).filter(|&u| u > 0) else {
                    continue;
                };
                let prefix_tokens = (r >> 40) as usize % donor_used + 1;
                let prefix_pages: Vec<u32> = kv.seq_pages(donor).expect("live")
                    [..kv.config().pages_for(prefix_tokens)]
                    .to_vec();
                match kv.alloc_shared(id, &prefix_pages, prefix_tokens) {
                    Ok(n) => {
                        assert_eq!(n, prefix_pages.len());
                        assert_eq!(kv.live_pages(), live_before, "sharing takes no pages");
                        assert_eq!(kv.free_pages(), free_before);
                        assert_eq!(kv.seq_tokens(id), Some(prefix_tokens));
                        for &p in &prefix_pages {
                            assert!(kv.page_refs(p) >= 2);
                        }
                    }
                    Err(KvError::AlreadyAllocated(e)) => assert_eq!(e, id),
                    Err(KvError::InvalidShare) => {
                        // Only legal when part of the donor's prefix sits
                        // on the host tier — swapped KV cannot be shared.
                        assert!(
                            prefix_pages
                                .iter()
                                .any(|&p| kv.page_location(p) == PageLocation::Host),
                            "share of resident live pages was refused"
                        );
                        assert_eq!(kv.live_pages(), live_before);
                    }
                    Err(e) => panic!("unexpected alloc_shared error {e:?}"),
                }
            }
            5 => {
                // External retain (the prefix index pinning a page). Host-
                // resident pages are not pinnable, so pick among the
                // device-resident ones.
                let Some(page) = kv.seq_tokens(id).and_then(|_| {
                    let pages: Vec<u32> = kv
                        .seq_pages(id)
                        .expect("live")
                        .iter()
                        .copied()
                        .filter(|&p| kv.page_location(p) == PageLocation::Device)
                        .collect();
                    if pages.is_empty() {
                        None
                    } else {
                        Some(pages[(r >> 24) as usize % pages.len()])
                    }
                }) else {
                    continue;
                };
                let refs_before = kv.page_refs(page);
                kv.retain_pages(&[page]).expect("live page retains");
                assert_eq!(kv.page_refs(page), refs_before + 1);
                assert_eq!(kv.live_pages(), live_before);
                retained.push(page);
            }
            7 => {
                // Swap-out: move a tail slice of a live sequence's
                // exclusively-held device pages to the host tier.
                let Some(_) = kv.seq_tokens(id) else { continue };
                let exclusive: Vec<u32> = kv
                    .seq_pages(id)
                    .expect("live")
                    .iter()
                    .rev()
                    .copied()
                    .filter(|&p| {
                        kv.page_refs(p) == 1 && kv.page_location(p) == PageLocation::Device
                    })
                    .collect();
                if exclusive.is_empty() {
                    continue;
                }
                let take = (r >> 40) as usize % exclusive.len() + 1;
                let plan = &exclusive[..take];
                let host_before = kv.host_live_pages();
                let seq_host_before = kv.seq_host_pages(id);
                let used_before = kv.used_tokens();
                match kv.swap_out(id, plan) {
                    Ok(()) => {
                        // Tier move, not a free: identities, refcounts and
                        // written slots all survive; device frames return.
                        assert_eq!(kv.live_pages(), live_before);
                        assert_eq!(kv.free_pages(), free_before + take);
                        assert_eq!(kv.host_live_pages(), host_before + take);
                        assert_eq!(kv.used_tokens(), used_before);
                        for &p in plan {
                            assert_eq!(kv.page_refs(p), 1, "refcount survived the move");
                            assert_eq!(kv.page_location(p), PageLocation::Host);
                        }
                        assert_eq!(kv.seq_host_pages(id), seq_host_before + take);
                    }
                    Err(KvError::OutOfHostPages { needed, free }) => {
                        assert_eq!(needed, take);
                        assert!(free < take, "atomic failure must be real");
                        assert_eq!(kv.host_live_pages(), host_before, "failed swap moved pages");
                        assert_eq!(kv.free_pages(), free_before);
                    }
                    Err(e) => panic!("unexpected swap_out error {e:?}"),
                }
            }
            8 => {
                // Swap-in: restore a sequence's host pages to the device.
                let host_held = kv.seq_host_pages(id);
                let used_before = kv.used_tokens();
                match kv.swap_in(id) {
                    Ok(n) => {
                        assert_eq!(n, host_held);
                        assert_eq!(kv.seq_host_pages(id), 0);
                        assert_eq!(kv.seq_resident(id), Some(true));
                        assert_eq!(kv.live_pages(), live_before);
                        assert_eq!(kv.used_tokens(), used_before);
                        assert_eq!(kv.free_pages(), free_before - n);
                    }
                    Err(KvError::UnknownSeq(_)) => assert!(kv.seq_tokens(id).is_none()),
                    Err(KvError::OutOfPages { needed, free }) => {
                        assert_eq!(needed, host_held);
                        assert!(free < host_held, "atomic failure must be real");
                        assert_eq!(
                            kv.seq_host_pages(id),
                            host_held,
                            "failed restore moved pages"
                        );
                    }
                    Err(e) => panic!("unexpected swap_in error {e:?}"),
                }
            }
            9 => {
                // KV-sparsity eviction: drop a subset of a live
                // sequence's fully-written device-resident pages and
                // check the page-aligned shrinkage; shared or pinned
                // frames must survive for their other holders.
                let Some(used) = kv.seq_tokens(id) else {
                    continue;
                };
                let table: Vec<u32> = kv.seq_pages(id).expect("live").to_vec();
                let full = (used / page_size).min(table.len());
                if (r >> 20) & 1 == 1 && used % page_size != 0 && full < table.len() {
                    // Illegal pick: the partially filled tail page. The
                    // release must fail atomically.
                    let tail = table[full];
                    assert_eq!(
                        kv.release_seq_pages(id, &[tail]),
                        Err(KvError::InvalidEvict)
                    );
                    assert_eq!(kv.seq_tokens(id), Some(used), "failed evict mutated seq");
                    assert_eq!(kv.live_pages(), live_before);
                    continue;
                }
                let legal: Vec<u32> = table[..full]
                    .iter()
                    .copied()
                    .filter(|&p| kv.page_location(p) == PageLocation::Device)
                    .collect();
                if legal.is_empty() {
                    continue;
                }
                let take = (r >> 40) as usize % legal.len() + 1;
                let picked = &legal[..take];
                let exclusive = picked.iter().filter(|&&p| kv.page_refs(p) == 1).count();
                let shared: Vec<(u32, u32)> = picked
                    .iter()
                    .map(|&p| (p, kv.page_refs(p)))
                    .filter(|&(_, refs)| refs > 1)
                    .collect();
                let freed = kv
                    .release_seq_pages(id, picked)
                    .expect("fully-written device pages evict");
                assert_eq!(freed, exclusive, "freed exactly the exclusive frames");
                assert_eq!(
                    kv.seq_tokens(id),
                    Some(used - take * page_size),
                    "page-aligned shrinkage"
                );
                assert_eq!(kv.live_pages(), live_before - freed);
                assert_eq!(kv.free_pages(), free_before + freed);
                for &(p, refs) in &shared {
                    assert_eq!(kv.page_refs(p), refs - 1, "shared frame survived");
                }
            }
            _ => {
                // External release of one previously retained page.
                let Some(page) = retained.pop() else { continue };
                let refs_before = kv.page_refs(page);
                let freed = kv.release_pages(&[page]).expect("was retained");
                assert_eq!(freed, usize::from(refs_before == 1));
                assert_eq!(kv.free_pages(), free_before + freed);
            }
        }
        kv.check_invariants().expect("pool invariant violated");
        let s = kv.stats();
        assert!(s.occupancy <= 1.0, "occupancy over capacity");
        // Device frames: live-on-device + free == capacity (host-resident
        // pages hold host frames, not device ones).
        assert_eq!(
            s.live_pages - s.host_live_pages + s.free_pages,
            s.capacity_pages,
            "device frame leak"
        );
        assert!(
            s.host_live_pages <= s.host_capacity_pages,
            "host overcommit"
        );
        assert_eq!(s.allocated_total, s.freed_total + s.live_pages as u64);
    }
    (kv, retained)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random alloc/extend/free/preempt/share/retain/release/swap streams
    /// never violate the pool's conservation invariants (tier residency
    /// included — every live page in exactly one tier, refcounts
    /// surviving tier moves), and draining every survivor (sequences and
    /// external retains) afterwards returns the pool to a fully-free,
    /// leak-free state across both tiers.
    #[test]
    fn random_op_streams_conserve_pages(
        page_size in 1usize..32,
        pages in 1usize..256,
        host_pages in 0usize..64,
        ids in 1u64..24,
        ops in 1usize..400,
        seed in 0u64..10_000,
    ) {
        let (mut kv, retained) = drive_ops(page_size, pages, host_pages, ids, ops, seed);
        for id in 0..ids {
            let _ = kv.free(id);
        }
        if !retained.is_empty() {
            kv.release_pages(&retained).expect("retained pages release");
        }
        let s = kv.stats();
        prop_assert!(s.conserved(), "leak after draining: {s:?}");
        prop_assert_eq!(s.free_pages, s.capacity_pages);
        prop_assert_eq!(s.host_live_pages, 0, "host tier drained");
        prop_assert_eq!(s.used_tokens, 0);
        prop_assert_eq!(kv.shared_pages(), 0);
        kv.check_invariants().expect("pool invariant violated");
    }

    /// Reservations (static padded batching's worst case) obey the same
    /// conservation: used tokens never exceed reserved slots, occupancy
    /// stays bounded, and frees return everything.
    #[test]
    fn reservations_conserve_and_bound_fragmentation(
        page_size in 1usize..32,
        n_seqs in 1usize..16,
        used in 1usize..64,
        slack in 0usize..128,
        seed in 0u64..10_000,
    ) {
        let reserved = used + slack;
        let pages_per = reserved.div_ceil(page_size);
        let mut kv = PagedKvCache::new(KvConfig::new(page_size, pages_per * n_seqs));
        for id in 0..n_seqs as u64 {
            let take = kv.alloc_reserved(id ^ seed, used, reserved).expect("pool sized to fit");
            prop_assert_eq!(take, pages_per);
        }
        prop_assert!((kv.occupancy() - 1.0).abs() < 1e-9, "pool exactly full");
        prop_assert!(kv.fragmentation() >= 0.0 && kv.fragmentation() < 1.0);
        // Extending inside the reservation takes no pages.
        if slack > 0 {
            prop_assert_eq!(kv.extend(seed, slack).expect("within reservation"), 0);
        }
        for id in 0..n_seqs as u64 {
            kv.free(id ^ seed).expect("freed exactly once");
        }
        prop_assert!(kv.stats().conserved());
        kv.check_invariants().expect("pool invariant violated");
    }

    /// A chain of sequences sharing one donor's prefix: every sharer's
    /// copy-on-write and growth stays private, frees in any order never
    /// strand or double-free a page, and the books balance.
    #[test]
    fn shared_prefix_chains_conserve_across_interleavings(
        page_size in 2usize..32,
        full_pages in 1usize..6,
        partial in 1usize..31,
        sharers in 1usize..8,
        grow in 1usize..48,
        seed in 0u64..10_000,
    ) {
        let partial = partial.min(page_size - 1);
        let donor_tokens = full_pages * page_size + partial;
        let pool = (full_pages + 1) * (sharers + 1) + sharers * (grow / page_size + 2);
        let mut kv = PagedKvCache::new(KvConfig::new(page_size, pool));
        kv.alloc(0, donor_tokens).expect("pool sized for donor");
        let donor_pages: Vec<u32> = kv.seq_pages(0).expect("live").to_vec();
        for s in 1..=sharers as u64 {
            // Every sharer adopts the full donor prefix including the
            // partially written boundary page...
            kv.alloc_shared(s, &donor_pages, donor_tokens).expect("pool sized");
            // ...then grows, which must copy that boundary page.
            let cow_before = kv.stats().cow_copies;
            kv.extend(s, grow).expect("pool sized for growth");
            prop_assert_eq!(kv.stats().cow_copies, cow_before + 1);
            prop_assert_eq!(kv.seq_tokens(s), Some(donor_tokens + grow));
            kv.check_invariants().expect("pool invariant violated");
        }
        // The boundary page is exclusive to the donor again; full prefix
        // pages are shared by everyone.
        prop_assert_eq!(kv.page_refs(donor_pages[full_pages]), 1);
        for &p in &donor_pages[..full_pages] {
            prop_assert_eq!(kv.page_refs(p), sharers as u32 + 1);
        }
        // Free in a seed-dependent interleaving: donor first or last.
        let order: Vec<u64> = if seed % 2 == 0 {
            (0..=sharers as u64).collect()
        } else {
            (0..=sharers as u64).rev().collect()
        };
        for id in order {
            kv.free(id).expect("freed exactly once");
            kv.check_invariants().expect("pool invariant violated");
        }
        prop_assert!(kv.stats().conserved());
    }

    /// End-to-end: decode serving over a random trace frees every page it
    /// allocates, under both policies, even when a tiny pool forces
    /// admission throttling and preemption.
    #[test]
    fn decode_runs_leak_no_pages(
        n in 1usize..24,
        rate_centirps in 1000u64..40_000,
        mean_out in 2u64..48,
        tiny_pool in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let trace = DecodeTrace::poisson(
            &DatasetSpec::mnli(),
            &DecodeSpec::geometric(mean_out as f64, 1, 96),
            n,
            rate_centirps as f64 / 100.0,
            seed,
        );
        for policy in [
            DecodePolicy::ContinuousPaddingFree { token_budget: 128 },
            DecodePolicy::StaticPadded { max_batch: 8 },
        ] {
            let mut builder = proptest_builder(policy);
            if tiny_pool == 1 {
                // Just enough for one worst-case context plus headroom:
                // forces the out-of-pages admission signal and preemption
                // without ever making a single request unservable.
                builder = builder.kv_pages(2 * (128usize + 96).div_ceil(PAGE_SIZE) + 2);
            }
            let cfg = builder.build().expect("valid proptest config");
            let report = simulate_decode_trace(&cfg, &trace);
            prop_assert_eq!(report.requests, trace.len());
            prop_assert!(report.kv.conserved(),
                "{} leaked pages: {:?}", report.policy, report.kv);
            prop_assert!(report.kv_peak_occupancy <= 1.0 + 1e-9);
            prop_assert!(report.real_tokens >= trace.total_tokens() - trace.len(),
                "served fewer rows than the no-preemption floor");
        }
    }

    /// End-to-end with prefix caching: shared-prefix traces served with
    /// the radix index keep every pool and tree invariant (checked every
    /// iteration via `verify_invariants`) and drain leak-free, tiny pools
    /// included.
    #[test]
    fn prefix_cached_decode_runs_leak_no_pages(
        n in 1usize..20,
        rate_centirps in 1000u64..40_000,
        mean_out in 2u64..32,
        tiny_pool in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let spec = SharedPrefixSpec {
            vocab: 256,
            num_system_prompts: 3,
            system_tokens: 48,
            num_templates: 4,
            template_tokens: 24,
            unique_min: 4,
            unique_max: 24,
            zipf_exponent: 1.0,
        };
        let arrivals = ArrivalTrace::bursty(
            &DatasetSpec::mnli(), n, rate_centirps as f64 / 100.0, 0.2, 0.3, seed);
        let trace = spec.decode_trace(
            &DecodeSpec::geometric(mean_out as f64, 1, 48), arrivals.arrival_s, seed);
        let mut builder = proptest_builder(
            DecodePolicy::ContinuousPaddingFree { token_budget: 128 })
            .prefix_caching(true);
        if tiny_pool == 1 {
            // One worst-case context plus headroom: index eviction must
            // contend with decode allocation.
            builder = builder.kv_pages(2 * (128usize + 48).div_ceil(PAGE_SIZE) + 2);
        }
        let cfg = builder.build().expect("valid proptest config");
        let report = simulate_decode_trace(&cfg, &trace);
        prop_assert_eq!(report.requests, trace.len());
        prop_assert!(report.kv.conserved(),
            "prefix-cached run leaked pages: {:?}", report.kv);
        prop_assert_eq!(report.prefix_hits + report.prefix_misses, trace.len());
        let ix = report.prefix.expect("index stats attached");
        prop_assert_eq!(ix.inserted_pages, ix.evicted_pages + ix.pages_held as u64);
        prop_assert!(report.kv_peak_occupancy <= 1.0 + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end under swap-to-host preemption on a tiny pool: random
    /// long-output traces force eviction, and every run keeps the tiered
    /// pool's invariants (checked every iteration — no decode step reads
    /// a host-resident page, every page in exactly one tier) and drains
    /// both tiers leak-free. Transfer accounting balances: pages out ≥
    /// pages back, and whatever swapped also restored or freed.
    #[test]
    fn swap_to_host_decode_runs_leak_no_pages(
        n in 1usize..20,
        rate_centirps in 5000u64..50_000,
        mean_out in 16u64..96,
        host_pages in 2usize..64,
        seed in 0u64..10_000,
    ) {
        let trace = DecodeTrace::poisson(
            &DatasetSpec::cola(),
            &DecodeSpec::geometric(mean_out as f64, 4, 128),
            n,
            rate_centirps as f64 / 100.0,
            seed,
        );
        let cfg = proptest_builder(DecodePolicy::ContinuousPaddingFree { token_budget: 128 })
            .preempt(PreemptPolicy::SwapToHost)
            .host_pages(host_pages)
            // One worst-case context (64 + 128 tokens = 12 pages) plus slim
            // headroom: decode growth must evict, swap must engage.
            .kv_pages((64usize + 128).div_ceil(PAGE_SIZE) + 3)
            .build()
            .expect("valid proptest config");
        let report = simulate_decode_trace(&cfg, &trace);
        prop_assert_eq!(report.requests, trace.len());
        prop_assert!(report.kv.conserved(),
            "swap run leaked pages: {:?}", report.kv);
        prop_assert_eq!(report.kv.host_live_pages, 0, "host tier drained");
        prop_assert!(report.kv.swapped_in_pages <= report.kv.swapped_out_pages);
        if let Some(s) = report.swap {
            prop_assert_eq!(s.out_pages, report.kv.swapped_out_pages);
            prop_assert_eq!(s.in_pages, report.kv.swapped_in_pages);
        }
        // Every swap preemption ends in a restore or a demotion back to
        // recompute (demotions are counted among the fallbacks).
        prop_assert!(report.restores as u64 <= report.swap_preemptions);
        prop_assert!(report.swap_preemptions - report.restores as u64
            <= report.swap_fallbacks);
        prop_assert!(report.kv_peak_occupancy <= 1.0 + 1e-9);
    }

    /// End-to-end under per-sequence KV sparsity: random traces served
    /// under sliding-window and heavy-hitter retention (tiny pools
    /// included, so eviction races admission and preemption) keep every
    /// pool invariant, agree with the pool on eviction counts, and drain
    /// leak-free with exactly the trace's goodput served.
    #[test]
    fn sparse_decode_runs_leak_no_pages(
        n in 1usize..20,
        rate_centirps in 1000u64..40_000,
        mean_out in 8u64..64,
        recent_pages in 1usize..6,
        heavy_pages in 1usize..6,
        tiny_pool in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let trace = DecodeTrace::poisson(
            &DatasetSpec::mnli(),
            &DecodeSpec::geometric(mean_out as f64, 1, 128),
            n,
            rate_centirps as f64 / 100.0,
            seed,
        );
        let recent = recent_pages * PAGE_SIZE;
        for sparsity in [
            KvSparsityPolicy::SlidingWindow { recent },
            KvSparsityPolicy::HeavyHitter { recent, heavy: heavy_pages * PAGE_SIZE },
        ] {
            let mut builder = proptest_builder(
                DecodePolicy::ContinuousPaddingFree { token_budget: 128 })
                .kv_sparsity(sparsity);
            if tiny_pool == 1 {
                // One worst-case context plus headroom: eviction must
                // interleave with preemption and admission throttling.
                builder = builder.kv_pages(2 * (128usize + 128).div_ceil(PAGE_SIZE) + 2);
            }
            let cfg = builder.build().expect("valid sparse proptest config");
            let report = simulate_decode_trace(&cfg, &trace);
            prop_assert_eq!(report.requests, trace.len());
            prop_assert!(report.kv.conserved(),
                "{} leaked pages: {:?}", report.policy, report.kv);
            prop_assert_eq!(report.kv.sparsity_evicted_pages, report.sparsity_dropped_pages,
                "pool and metrics disagree on evictions");
            prop_assert!(report.sparsity_freed_pages <= report.sparsity_dropped_pages);
            prop_assert!(report.attended_tokens <= report.cached_ctx_tokens);
            // Goodput conservation: recompute re-prefills are metered as
            // overhead, so exactly the trace's rows count as served.
            prop_assert_eq!(report.real_tokens, trace.total_tokens() - trace.len(),
                "served rows must equal the no-preemption floor exactly");
            prop_assert!(report.kv_peak_occupancy <= 1.0 + 1e-9);
        }
    }
}
