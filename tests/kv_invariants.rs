//! Property-based tests (proptest) for the paged KV-cache allocator and
//! its use by the decode runtime: page conservation (allocated = freed +
//! live), no double-frees, occupancy bounds, and end-of-run leak freedom
//! under completion and preemption.

use pit::kv::{KvConfig, KvError, PagedKvCache};
use pit::serve::decode::{simulate_decode_trace, DecodePolicy, DecodeServeConfig};
use pit::workloads::{DatasetSpec, DecodeSpec, DecodeTrace};
use proptest::prelude::*;

/// Deterministic operation stream driver: interprets a seed as a sequence
/// of alloc/extend/free/preempt operations over a bounded id space and
/// checks the pool invariants after every step.
fn drive_ops(page_size: usize, pages: usize, ids: u64, ops: usize, seed: u64) -> PagedKvCache {
    let mut kv = PagedKvCache::new(KvConfig::new(page_size, pages));
    let mut h = seed | 1;
    let mut next = || {
        // xorshift64* — deterministic op stream per seed.
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17;
        h.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for _ in 0..ops {
        let r = next();
        let id = (r >> 8) % ids;
        let tokens = (r >> 32) as usize % (3 * page_size) + 1;
        let live_before = kv.live_pages();
        let free_before = kv.free_pages();
        match r % 4 {
            0 => {
                let was_live = kv.seq_tokens(id).is_some();
                match kv.alloc(id, tokens) {
                    Ok(n) => {
                        assert!(!was_live, "alloc succeeded on a live sequence");
                        assert_eq!(n, kv.config().pages_for(tokens));
                        assert_eq!(kv.live_pages(), live_before + n);
                    }
                    Err(KvError::AlreadyAllocated(e)) => assert_eq!(e, id),
                    Err(KvError::OutOfPages { needed, free }) => {
                        assert_eq!(free, free_before);
                        assert!(needed > free, "atomic failure must be real");
                        assert_eq!(kv.live_pages(), live_before, "failed alloc mutated pool");
                    }
                    Err(e) => panic!("unexpected alloc error {e:?}"),
                }
            }
            1 => {
                let held = kv.seq_tokens(id);
                match kv.extend(id, tokens) {
                    Ok(n) => {
                        let before = held.expect("extend succeeded on unknown seq");
                        assert_eq!(kv.seq_tokens(id), Some(before + tokens));
                        assert_eq!(kv.live_pages(), live_before + n);
                    }
                    Err(KvError::UnknownSeq(_)) => assert!(held.is_none()),
                    Err(KvError::OutOfPages { .. }) => {
                        assert_eq!(kv.seq_tokens(id), held, "failed extend mutated seq");
                        assert_eq!(kv.live_pages(), live_before);
                    }
                    Err(e) => panic!("unexpected extend error {e:?}"),
                }
            }
            2 => {
                let was_live = kv.seq_tokens(id).is_some();
                match kv.free(id) {
                    Ok(n) => {
                        assert!(was_live);
                        assert!(n >= 1, "live sequences hold at least one page");
                        assert_eq!(kv.free_pages(), free_before + n);
                        // Freed exactly once: a second free must fail.
                        assert_eq!(kv.free(id), Err(KvError::UnknownSeq(id)));
                    }
                    Err(KvError::UnknownSeq(_)) => assert!(!was_live),
                    Err(e) => panic!("unexpected free error {e:?}"),
                }
            }
            _ => {
                let preemptions_before = kv.stats().preemptions;
                match kv.preempt(id) {
                    Ok(_) => assert_eq!(kv.stats().preemptions, preemptions_before + 1),
                    Err(KvError::UnknownSeq(_)) => {
                        assert_eq!(kv.stats().preemptions, preemptions_before)
                    }
                    Err(e) => panic!("unexpected preempt error {e:?}"),
                }
            }
        }
        kv.check_invariants().expect("pool invariant violated");
        let s = kv.stats();
        assert!(s.occupancy <= 1.0, "occupancy over capacity");
        assert_eq!(s.live_pages + s.free_pages, s.capacity_pages, "page leak");
        assert_eq!(s.allocated_total, s.freed_total + s.live_pages as u64);
    }
    kv
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random alloc/extend/free/preempt streams never violate the pool's
    /// conservation invariants, and draining every survivor afterwards
    /// returns the pool to a fully-free, leak-free state.
    #[test]
    fn random_op_streams_conserve_pages(
        page_size in 1usize..32,
        pages in 1usize..256,
        ids in 1u64..24,
        ops in 1usize..400,
        seed in 0u64..10_000,
    ) {
        let mut kv = drive_ops(page_size, pages, ids, ops, seed);
        for id in 0..ids {
            let _ = kv.free(id);
        }
        let s = kv.stats();
        prop_assert!(s.conserved(), "leak after draining: {s:?}");
        prop_assert_eq!(s.free_pages, s.capacity_pages);
        prop_assert_eq!(s.used_tokens, 0);
        kv.check_invariants().expect("pool invariant violated");
    }

    /// Reservations (static padded batching's worst case) obey the same
    /// conservation: used tokens never exceed reserved slots, occupancy
    /// stays bounded, and frees return everything.
    #[test]
    fn reservations_conserve_and_bound_fragmentation(
        page_size in 1usize..32,
        n_seqs in 1usize..16,
        used in 1usize..64,
        slack in 0usize..128,
        seed in 0u64..10_000,
    ) {
        let reserved = used + slack;
        let pages_per = reserved.div_ceil(page_size);
        let mut kv = PagedKvCache::new(KvConfig::new(page_size, pages_per * n_seqs));
        for id in 0..n_seqs as u64 {
            let take = kv.alloc_reserved(id ^ seed, used, reserved).expect("pool sized to fit");
            prop_assert_eq!(take, pages_per);
        }
        prop_assert!((kv.occupancy() - 1.0).abs() < 1e-9, "pool exactly full");
        prop_assert!(kv.fragmentation() >= 0.0 && kv.fragmentation() < 1.0);
        // Extending inside the reservation takes no pages.
        if slack > 0 {
            prop_assert_eq!(kv.extend(seed, slack).expect("within reservation"), 0);
        }
        for id in 0..n_seqs as u64 {
            kv.free(id ^ seed).expect("freed exactly once");
        }
        prop_assert!(kv.stats().conserved());
        kv.check_invariants().expect("pool invariant violated");
    }

    /// End-to-end: decode serving over a random trace frees every page it
    /// allocates, under both policies, even when a tiny pool forces
    /// admission throttling and preemption.
    #[test]
    fn decode_runs_leak_no_pages(
        n in 1usize..24,
        rate_centirps in 1000u64..40_000,
        mean_out in 2u64..48,
        tiny_pool in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let trace = DecodeTrace::poisson(
            &DatasetSpec::mnli(),
            &DecodeSpec::geometric(mean_out as f64, 1, 96),
            n,
            rate_centirps as f64 / 100.0,
            seed,
        );
        for policy in [
            DecodePolicy::ContinuousPaddingFree { token_budget: 128 },
            DecodePolicy::StaticPadded { max_batch: 8 },
        ] {
            let mut cfg = DecodeServeConfig::new(policy);
            cfg.model.layers = 1; // cost model depth is irrelevant here
            if tiny_pool == 1 {
                // Just enough for one worst-case context plus headroom:
                // forces the out-of-pages admission signal and preemption
                // without ever making a single request unservable.
                cfg.kv_pages = Some(2 * (128usize + 96).div_ceil(cfg.page_size) + 2);
            }
            let report = simulate_decode_trace(&cfg, &trace);
            prop_assert_eq!(report.requests, trace.len());
            prop_assert!(report.kv.conserved(),
                "{} leaked pages: {:?}", report.policy, report.kv);
            prop_assert!(report.kv_peak_occupancy <= 1.0 + 1e-9);
            prop_assert!(report.real_tokens >= trace.total_tokens() - trace.len(),
                "served fewer rows than the no-preemption floor");
        }
    }
}
