//! Property-based tests (proptest) for the device-time ledger and the
//! Prometheus text exposition:
//!
//! - across random decode-serving configurations (dense / sliding-window
//!   / heavy-hitter KV sparsity × recompute / swap preemption), the
//!   ledger's cost categories tile the report's modelled GPU time
//!   exactly, and busy + stall + idle time tiles the virtual clock —
//!   conservation holds in integer picoseconds, not within a tolerance;
//! - whatever a report's exposition renders, the line-format parser
//!   reads back, and re-rendering the parse reproduces the text byte
//!   for byte (render ∘ parse is the identity on rendered output).

use pit::gpusim::DeviceSpec;
use pit::models::ModelConfig;
use pit::serve::decode::{
    simulate_decode_trace, DecodePolicy, DecodeServeConfig, KvSparsityPolicy, PreemptPolicy,
};
use pit::trace::{parse_exposition, Exposition, LatencySketch};
use pit::workloads::{DatasetSpec, DecodeSpec, DecodeTrace};
use proptest::prelude::*;

fn config(
    sparsity: KvSparsityPolicy,
    preempt: PreemptPolicy,
    kv_pages: usize,
) -> DecodeServeConfig {
    DecodeServeConfig::builder(ModelConfig::opt("1.3B"), DeviceSpec::a100_80gb())
        .policy(DecodePolicy::ContinuousPaddingFree { token_budget: 256 })
        .kv_pages(kv_pages)
        .kv_sparsity(sparsity)
        .preempt(preempt)
        .verify_invariants(true)
        .build()
        .expect("valid ledger-proptest config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole invariant, end to end: for any configuration in the
    /// sparsity × preemption matrix, under enough KV pressure to exercise
    /// stalls, the ledger conserves exactly and its busy time *is* the
    /// report's GPU time (the two are accumulated by independent code
    /// paths — f64 summation in the metrics collector, integer
    /// picoseconds in the ledger — so agreement is a real check, bounded
    /// only by the 0.5 ps rounding of each charge).
    #[test]
    fn ledger_tiles_gpu_time_across_config_matrix(
        sparsity in vec![
            KvSparsityPolicy::Dense,
            KvSparsityPolicy::SlidingWindow { recent: 64 },
            KvSparsityPolicy::HeavyHitter { recent: 64, heavy: 64 },
        ],
        preempt in vec![PreemptPolicy::Recompute, PreemptPolicy::SwapToHost],
        kv_pages in vec![96usize, 512],
        n in 8usize..13,
        seed in 0u64..1000,
    ) {
        let t = DecodeTrace::poisson(
            &DatasetSpec::cola(),
            &DecodeSpec::geometric(48.0, 8, 128),
            n,
            400.0,
            seed,
        );
        let r = simulate_decode_trace(&config(sparsity, preempt, kv_pages), &t);
        prop_assert_eq!(r.requests, t.len());

        // Exact conservation in integer picoseconds: the five compute
        // categories tile busy time, and busy + stalls + idle tile the
        // virtual clock.
        prop_assert!(r.ledger.conserved(), "ledger must conserve: {:?}", r.ledger);
        let compute = r.ledger.prefill_attention_ps
            + r.ledger.decode_attention_ps
            + r.ledger.dense_gemm_ps
            + r.ledger.sparse_conversion_ps
            + r.ledger.jit_search_ps;
        prop_assert_eq!(compute, r.ledger.busy_ps);
        prop_assert_eq!(
            r.ledger.busy_ps
                + r.ledger.swap_d2h_stall_ps
                + r.ledger.swap_h2d_stall_ps
                + r.ledger.idle_ps,
            r.ledger.clock_ps
        );

        // The ledger's busy time is the report's GPU time, up to 0.5 ps
        // of rounding per charged step.
        let tol = (r.iterations as f64 + 1.0) * 0.5e-12 + 1e-9;
        prop_assert!(
            (r.ledger.busy_s() - r.gpu_time_s).abs() <= tol,
            "busy {} vs gpu {} exceeds {}",
            r.ledger.busy_s(),
            r.gpu_time_s,
            tol
        );

        // Utilization derives from the same integers.
        prop_assert!((0.0..=1.0).contains(&r.utilization.busy_fraction));
        prop_assert!((0.0..=1.0).contains(&r.utilization.mfu));

        // Swap stalls only appear under the swap policy, and their link
        // bytes reach the utilization counters.
        if r.swap_preemptions > 0 {
            prop_assert!(r.utilization.d2h_bytes > 0);
        } else {
            prop_assert_eq!(r.ledger.swap_d2h_stall_ps, 0);
        }

        // The report's exposition round-trips through the parser.
        let text = r.exposition().render();
        let parsed = parse_exposition(&text).expect("report exposition parses");
        prop_assert_eq!(parsed.render(), text);
    }

    /// The exposition writer round-trips arbitrary metric values through
    /// the line-format parser: floats survive via their shortest
    /// round-trip representation, label sets and HELP/TYPE headers are
    /// preserved, and re-rendering reproduces the text exactly.
    #[test]
    fn exposition_roundtrips_random_metrics(
        counter_v in 0.0f64..1e15,
        gauge_v in -1e6f64..1e6,
        samples in 1usize..200,
        seed in 0u64..1000,
    ) {
        let mut sketch = LatencySketch::new();
        for i in 0..samples {
            // Deterministic pseudo-random latencies spanning microseconds
            // to minutes.
            let x = ((i as u64).wrapping_mul(6_364_136_223_846_793_005).wrapping_add(seed)
                % 1_000_000) as f64;
            sketch.record(1e-6 * (1.0 + x));
        }
        let mut out = Exposition::new();
        out.counter("pit_test_events_total", "Events observed.", counter_v);
        out.gauge("pit_test_pressure", "Signed pressure gauge.", gauge_v);
        out.summary(
            "pit_test_latency_seconds",
            "Latency distribution.",
            &sketch,
            &[0.5, 0.95, 0.99],
        );
        let text = out.render();
        let parsed = parse_exposition(&text).expect("rendered exposition parses");
        prop_assert_eq!(parsed.families().len(), out.families().len());
        prop_assert_eq!(parsed.render(), text);
    }
}
