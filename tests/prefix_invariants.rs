//! Property-based tests for the radix prompt-prefix index: matches always
//! agree with a naive page-granular mirror model, insert adopts exactly
//! the pages that extend the tree, eviction never leaves a stale page
//! behind, and the structural invariants hold after every operation.

use pit::prefix::RadixPrefixIndex;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Deterministic op-stream driver. The mirror model maps every
/// *page-aligned prefix* (as a token vector) to the page id the index
/// holds for it; because the tree dedups on insert and evicts only leaf
/// chains, that mapping is exact and prefix-closed at all times.
fn drive_radix(page_size: usize, streams: u64, ops: usize, seed: u64) {
    let mut ix = RadixPrefixIndex::new(page_size);
    let mut mirror: HashMap<Vec<u32>, u32> = HashMap::new();
    let mut live: HashSet<u32> = HashSet::new();
    let mut next_page: u32 = 0;
    let mut h = seed | 1;
    let mut next = || {
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17;
        h.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };

    // Keys are prefixes of a few deterministic base streams, so distinct
    // keys share long prefixes — the shape radix trees exist for.
    let key = |stream: u64, pages: usize, ps: usize| -> Vec<u32> {
        (0..pages * ps)
            .map(|i| {
                let mut x = stream
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((i / ps) as u64)
                    | 1;
                x ^= x << 13;
                x ^= x >> 7;
                (x as u32) ^ ((i % ps) as u32)
            })
            .collect()
    };

    // The longest stored prefix of `tokens`, page by page, per the mirror.
    let expected_match = |mirror: &HashMap<Vec<u32>, u32>, tokens: &[u32], ps: usize| {
        let mut pages = Vec::new();
        for i in 1..=tokens.len() / ps {
            match mirror.get(&tokens[..i * ps]) {
                Some(&p) => pages.push(p),
                None => break,
            }
        }
        pages
    };

    for _ in 0..ops {
        let r = next();
        let stream = (r >> 8) % streams;
        let pages = (r >> 32) as usize % 6;
        let tokens = key(stream, pages, page_size);
        match r % 3 {
            0 => {
                // Insert: supply the mirror's page for known prefixes and a
                // fresh id for new ones — exactly what a request that
                // matched the known part and prefilled the rest would
                // publish.
                let supplied: Vec<u32> = (1..=pages)
                    .map(|i| {
                        mirror
                            .get(&tokens[..i * page_size])
                            .copied()
                            .unwrap_or_else(|| {
                                next_page += 1;
                                next_page
                            })
                    })
                    .collect();
                let adopted = ix.insert(&tokens, &supplied);
                let fresh: Vec<u32> = supplied
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| !mirror.contains_key(&tokens[..(i + 1) * page_size]))
                    .map(|(_, &p)| p)
                    .collect();
                assert_eq!(adopted, fresh, "adopts exactly the tree-extending pages");
                for (i, &p) in supplied.iter().enumerate() {
                    mirror
                        .entry(tokens[..(i + 1) * page_size].to_vec())
                        .or_insert(p);
                    live.insert(p);
                }
            }
            1 => {
                // Match: must equal the mirror's longest stored prefix and
                // never surface an evicted (stale) page.
                let m = ix.match_prefix(&tokens);
                assert_eq!(m.pages, expected_match(&mirror, &tokens, page_size));
                assert_eq!(m.tokens, m.pages.len() * page_size);
                for p in &m.pages {
                    assert!(live.contains(p), "match returned stale page {p}");
                }
            }
            _ => {
                // Evict: released pages must be live, unique, and leave
                // the mirror prefix-closed (leaf eviction only).
                let want = (r >> 16) as usize % 4 + 1;
                let evicted = ix.evict_lru(want);
                let mut unique = HashSet::new();
                for p in &evicted {
                    assert!(live.remove(p), "evicted unknown or stale page {p}");
                    assert!(unique.insert(*p), "page {p} evicted twice");
                }
                mirror.retain(|_, p| live.contains(p));
                for prefix in mirror.keys() {
                    for i in 1..prefix.len() / page_size {
                        assert!(
                            mirror.contains_key(&prefix[..i * page_size]),
                            "leaf eviction broke prefix closure"
                        );
                    }
                }
            }
        }
        ix.check_invariants().expect("radix invariant violated");
        assert_eq!(
            ix.pages_held(),
            mirror.len(),
            "tree and mirror agree on size"
        );
    }

    // Drain returns exactly the live set, once each.
    let mut drained = ix.drain_all();
    drained.sort_unstable();
    let mut expected: Vec<u32> = live.into_iter().collect();
    expected.sort_unstable();
    assert_eq!(drained, expected);
    assert!(ix.is_empty());
    ix.check_invariants()
        .expect("radix invariant violated after drain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random insert/match/evict streams keep the radix index exactly in
    /// step with a naive longest-prefix mirror: no stale pages, no lost
    /// prefixes, page-granular matches only.
    #[test]
    fn radix_index_agrees_with_mirror_model(
        page_size in 1usize..8,
        streams in 1u64..6,
        ops in 1usize..300,
        seed in 0u64..10_000,
    ) {
        drive_radix(page_size, streams, ops, seed);
    }
}
