//! Property-based tests (proptest) for the core PIT invariants:
//! permutation invariance, coverage accounting and detector completeness.

use pit::core::detector::detect_mask;
use pit::core::microtile::MicroTile;
use pit::core::ops::Pit;
use pit::core::primitives::{sread_rows, swrite_rows};
use pit::gpusim::{CostModel, DeviceSpec};
use pit::sparse::{cover_count, generate, Mask};
use pit::tensor::{ops, DType, Tensor};
use proptest::prelude::*;

fn cost() -> CostModel {
    CostModel::new(DeviceSpec::v100_32gb())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1 in action: gathering any permutation of rows, multiplying
    /// densely and scattering back reproduces the dense product on those
    /// rows (m-axis permutation invariance).
    #[test]
    fn m_axis_permutation_invariance(
        rows in 4usize..24,
        cols in 4usize..24,
        n in 2usize..16,
        perm_seed in 0u64..1000,
        data_seed in 0u64..1000,
    ) {
        let a = Tensor::random([rows, cols], data_seed);
        let b = Tensor::random([cols, n], data_seed ^ 0xabcd);
        let reference = ops::matmul(&a, &b).unwrap();
        // Build a pseudo-random subset+permutation of rows.
        let mut selected: Vec<u32> = (0..rows as u32)
            .filter(|r| {
                r.wrapping_mul(2_654_435_761)
                    .wrapping_add(perm_seed as u32)
                    % 3
                    != 0
            })
            .collect();
        let k = selected.len();
        for i in (1..k).rev() {
            let j = ((perm_seed as usize).wrapping_mul(i * 31 + 7)) % (i + 1);
            selected.swap(i, j);
        }
        let packed = sread_rows(&a, &selected);
        let prod = ops::matmul(&packed, &b).unwrap();
        let mut out = Tensor::zeros([rows, n]);
        swrite_rows(&prod, &selected, &mut out);
        for &r in &selected {
            let got = out.row(r as usize).unwrap();
            let want = reference.row(r as usize).unwrap();
            for (g, w) in got.iter().zip(want.iter()) {
                prop_assert!((g - w).abs() < 1e-3);
            }
        }
    }

    /// The full pipeline equals the dense oracle for random granular masks.
    #[test]
    fn pipeline_matches_oracle(
        gh in 1usize..9,
        gw in 1usize..9,
        sparsity in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let pit = Pit::new(DeviceSpec::a100_80gb());
        let mask = generate::granular_random(96, 64, gh, gw, sparsity, seed);
        let a = mask.apply(&Tensor::random([96, 64], seed ^ 1));
        let b = Tensor::random([64, 48], seed ^ 2);
        let exec = pit.matmul_masked(&a, &mask, &b, DType::F32).unwrap();
        let reference = ops::matmul(&a, &b).unwrap();
        prop_assert!(exec.output.tensor.allclose(&reference, 1e-3));
    }

    /// The unordered detector finds exactly the non-zero micro-tiles, for
    /// any micro-tile shape and thread count.
    #[test]
    fn detector_is_complete_and_sound(
        mh in 1usize..9,
        mw in 1usize..9,
        threads in 1usize..7,
        sparsity in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mask = generate::granular_random(64, 64, 2, 2, sparsity, seed);
        let idx = detect_mask(&cost(), &mask, MicroTile::new(mh, mw), threads);
        let reference = pit::sparse::cover::nonzero_tiles(&mask, mh, mw);
        let got = idx.sorted_coords();
        prop_assert_eq!(got.len(), reference.len());
        for ((gr, gc), (rr, rc)) in got.iter().zip(reference.iter()) {
            prop_assert_eq!(*gr as usize, *rr);
            prop_assert_eq!(*gc as usize, *rc);
        }
    }

    /// CoverAlgo invariants: covered elements bound nnz, and the after-cover
    /// sparsity is a valid fraction that shrinks as tiles align.
    #[test]
    fn cover_accounting_invariants(
        sparsity in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mask = generate::granular_random(64, 64, 4, 1, sparsity, seed);
        let fine = cover_count(&mask, 4, 1);
        let coarse = cover_count(&mask, 16, 16);
        prop_assert!(fine.covered_elems >= mask.nnz());
        prop_assert!(coarse.covered_elems >= fine.covered_elems);
        prop_assert!((0.0..=1.0).contains(&fine.after_cover_sparsity()));
        // Aligned tiles cover exactly: no residual sparsity.
        prop_assert!(fine.after_cover_sparsity() < 1e-9);
    }

    /// Masks round-trip through apply/from_tensor.
    #[test]
    fn mask_apply_roundtrip(sparsity in 0.0f64..1.0, seed in 0u64..1000) {
        let mask = generate::granular_random(32, 48, 1, 1, sparsity, seed);
        let t = mask.apply(&Tensor::full([32, 48], 1.5));
        let back = Mask::from_tensor(&t);
        prop_assert_eq!(back.nnz(), mask.nnz());
        prop_assert!((t.sparsity() - mask.sparsity()).abs() < 1e-9);
    }
}
