//! Property-based tests (proptest) for the batching and serving
//! invariants: padding accounting, token conservation under splitting,
//! and the continuous-batching packer's budget/ordering guarantees.

use pit::serve::BatchPolicy;
use pit::workloads::{Batch, DatasetSpec};
use proptest::prelude::*;

/// Pseudo-random pending lengths derived from a seed (1..=max_len each).
fn lens_from_seed(n: usize, max_len: usize, seed: u64) -> Vec<usize> {
    (0..n)
        .map(|i| {
            let h = (seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_mul(0x2545_f491_4f6c_dd1d);
            (h as usize % max_len) + 1
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Padding accounting: for any batch, real tokens never exceed padded
    /// tokens and the waste ratio is a valid fraction.
    #[test]
    fn padding_accounting_is_sane(
        n in 0usize..64,
        max_len in 1usize..256,
        seed in 0u64..10_000,
    ) {
        let lens = lens_from_seed(n, max_len, seed);
        let longest = Batch::padded_to_longest(lens.clone());
        prop_assert!(longest.real_tokens() <= longest.padded_tokens());
        prop_assert!((0.0..=1.0).contains(&longest.padding_waste()));
        let split = Batch::padded_to(lens, max_len);
        prop_assert!(split.batch.real_tokens() <= split.batch.padded_tokens());
        prop_assert!((0.0..=1.0).contains(&split.batch.padding_waste()));
    }

    /// `padded_to` never drops tokens: batch + overflow account for every
    /// input token, and `split_to` reassembles them all across follow-ups.
    #[test]
    fn truncation_conserves_tokens(
        n in 1usize..48,
        max_len in 1usize..128,
        scale in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let lens = lens_from_seed(n, max_len * scale, seed);
        let total: usize = lens.iter().sum();
        let split = Batch::padded_to(lens.clone(), max_len);
        prop_assert_eq!(split.batch.real_tokens() + split.overflow_tokens(), total);
        prop_assert!(split.batch.lens.iter().all(|&l| l <= max_len));
        let batches = Batch::split_to(lens, max_len);
        let reassembled: usize = batches.iter().map(Batch::real_tokens).sum();
        prop_assert_eq!(reassembled, total);
        prop_assert!(batches.iter().all(|b| b.max_len <= max_len));
    }

    /// The padding-free packer never exceeds its token budget (except for
    /// a single oversized request, which must still make progress) and
    /// always takes a non-empty FIFO prefix.
    #[test]
    fn packer_respects_token_budget(
        n in 1usize..64,
        budget in 16usize..4096,
        max_len in 1usize..512,
        seed in 0u64..10_000,
    ) {
        let pending = lens_from_seed(n, max_len, seed);
        let policy = BatchPolicy::PaddingFree { token_budget: budget };
        let take = policy.take_count(&pending);
        prop_assert!(take >= 1 && take <= pending.len());
        let packed: usize = pending[..take].iter().sum();
        prop_assert!(packed <= budget || take == 1,
            "packed {packed} tokens over budget {budget} with take {take}");
        // Progress: leftover pending forms further batches until drained.
        let mut rest = pending;
        let mut drained = 0usize;
        while !rest.is_empty() {
            let t = policy.take_count(&rest);
            prop_assert!(t >= 1);
            drained += rest.drain(..t).sum::<usize>();
        }
        prop_assert_eq!(drained, lens_from_seed(n, max_len, seed).iter().sum::<usize>());
    }

    /// No policy reorders tokens within a request or across the FIFO
    /// prefix: the formed batch's `lens` are exactly the taken requests in
    /// admission order, each contributing one intact length entry, and the
    /// processed view never shrinks a request below its real length.
    #[test]
    fn packer_preserves_request_order_and_integrity(
        n in 1usize..48,
        seed in 0u64..10_000,
        budget in 64usize..2048,
        max_batch in 1usize..32,
        buckets in 1usize..8,
    ) {
        let pending = DatasetSpec::mnli().sample_lengths(n, seed);
        for policy in [
            BatchPolicy::PaddingFree { token_budget: budget },
            BatchPolicy::PaddedToLongest { max_batch },
            BatchPolicy::Bucketed { max_batch, buckets },
        ] {
            let take = policy.take_count(&pending);
            let formed = policy.form(pending[..take].to_vec());
            prop_assert_eq!(formed.lens.as_slice(), &pending[..take]);
            prop_assert_eq!(formed.real_tokens,
                pending[..take].iter().sum::<usize>());
            prop_assert!(formed.padded_tokens >= formed.real_tokens);
            prop_assert!((0.0..=1.0).contains(&formed.padding_waste()));
            // Every request is processed whole: the effective layout holds
            // at least its real tokens.
            prop_assert_eq!(formed.effective_lens.len(), formed.lens.len());
            prop_assert!(formed.effective_lens.iter().sum::<usize>() >= formed.real_tokens);
        }
    }

    /// Waste ordering across policies on identical prefixes: padding-free
    /// is exactly zero-waste; bucketing never wastes more than padding to
    /// the longest.
    #[test]
    fn policy_waste_ordering(
        n in 2usize..48,
        seed in 0u64..10_000,
        buckets in 1usize..8,
    ) {
        let lens = DatasetSpec::mnli().sample_lengths(n, seed);
        let free = BatchPolicy::PaddingFree { token_budget: usize::MAX }.form(lens.clone());
        let padded = BatchPolicy::PaddedToLongest { max_batch: n }.form(lens.clone());
        let bucketed = BatchPolicy::Bucketed { max_batch: n, buckets }.form(lens);
        prop_assert_eq!(free.padding_waste(), 0.0);
        prop_assert!(bucketed.padded_tokens <= padded.padded_tokens);
        prop_assert!(free.padded_tokens <= bucketed.padded_tokens);
    }
}
