//! Property-based and scale tests for `pit_trace::LatencySketch` — the
//! streaming quantile sketch the serving metrics stream into.
//!
//! Two things are pinned here. First, the advertised contract on
//! adversarial sample distributions: for any quantile `q`, the sketch is
//! within its relative-error bound of the exact rank statistic computed
//! by the oracle `Percentiles::from_unsorted`. Second, the reason the
//! sketch exists at all: a million-request replay holds a bounded number
//! of buckets — memory scales with the dynamic range, not the sample
//! count — while still answering percentiles inside the bound.

use pit::serve::Percentiles;
use pit::trace::{LatencySketch, DEFAULT_SKETCH_ERROR};
use proptest::prelude::*;

/// The oracle's rank convention, on a sorted slice.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn assert_within_bound(sketch: &LatencySketch, sorted: &[f64], q: f64) {
    let exact = exact_quantile(sorted, q);
    let got = sketch.quantile(q);
    let tol = sketch.error_bound() * exact.abs() + 1e-12;
    assert!(
        (got - exact).abs() <= tol,
        "q={q}: sketch {got} vs exact {exact} (tol {tol}, n={})",
        sorted.len()
    );
}

/// Deterministic xorshift-style stream in (0, 1).
fn unit(x: &mut u64) -> f64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*x >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// Adversarial sample generators, keyed by shape index so proptest can
/// sweep across them: constant, bimodal, heavy-tailed, log-uniform
/// across decades, and near-duplicate clusters straddling bucket edges.
fn generate(shape: usize, n: usize, seed: u64) -> Vec<f64> {
    let mut x = seed | 1;
    (0..n)
        .map(|i| match shape % 5 {
            // Constant: every bucket-midpoint error must cancel at rank.
            0 => 0.125,
            // Bimodal: microseconds vs seconds, nothing between.
            1 => {
                if unit(&mut x) < 0.3 {
                    1e-6 * (1.0 + unit(&mut x))
                } else {
                    1.0 + unit(&mut x)
                }
            }
            // Heavy tail: x^4 on a unit base spreads 6+ decades.
            2 => {
                let u = unit(&mut x);
                1e-4 + u.powi(4) * 100.0
            }
            // Log-uniform across 9 decades.
            3 => 1e-6 * (10.0f64).powf(unit(&mut x) * 9.0),
            // Near-duplicates around one value, straddling bucket edges.
            _ => 0.01 * (1.0 + 1e-4 * (i as f64 - n as f64 / 2.0)),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The advertised bound holds on every distribution shape, at every
    /// probed quantile, for any sample count.
    #[test]
    fn sketch_tracks_oracle_on_adversarial_distributions(
        shape in 0usize..5,
        n in 1usize..800,
        seed in 1u64..10_000,
    ) {
        let samples = generate(shape, n, seed);
        let mut sketch = LatencySketch::new();
        for &v in &samples {
            sketch.record(v);
        }
        let mut sorted = samples;
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_within_bound(&sketch, &sorted, q);
        }
        prop_assert_eq!(sketch.count() as usize, sorted.len());
        // Extremes are lossless, not just within the bound.
        prop_assert_eq!(sketch.quantile(0.0), sorted[0]);
        prop_assert_eq!(sketch.quantile(1.0), sorted[sorted.len() - 1]);
    }

    /// Merging is associative and commutative on quantiles: any split of
    /// the stream across shards, folded in any order, answers exactly
    /// what the all-at-once sketch answers.
    #[test]
    fn merge_is_associative_and_order_free(
        shape in 0usize..5,
        n in 3usize..400,
        seed in 1u64..10_000,
        split_seed in 0u64..1000,
    ) {
        let samples = generate(shape, n, seed);
        let mut whole = LatencySketch::new();
        let mut shards = [
            LatencySketch::new(),
            LatencySketch::new(),
            LatencySketch::new(),
        ];
        let mut x = split_seed | 1;
        for &v in &samples {
            whole.record(v);
            shards[(unit(&mut x) * 3.0) as usize % 3].record(v);
        }
        // (a ∪ b) ∪ c
        let mut left = shards[0].clone();
        left.merge(&shards[1]);
        left.merge(&shards[2]);
        // c ∪ (b ∪ a)
        let mut ba = shards[1].clone();
        ba.merge(&shards[0]);
        let mut right = shards[2].clone();
        right.merge(&ba);
        for q in [0.1, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
            prop_assert_eq!(left.quantile(q), whole.quantile(q));
        }
        prop_assert_eq!(left.count(), whole.count());
    }
}

/// The acceptance-criterion scale test: a 10^6-request replay. The
/// sketch's bucket count stays bounded by the dynamic range (a sample
/// vector would hold 8 MB; the sketch holds a few thousand entries), and
/// `Percentiles::from_sketch` lands within the advertised error of the
/// exact oracle over all million samples.
#[test]
fn million_request_replay_is_bounded_and_accurate() {
    const N: usize = 1_000_000;
    let mut sketch = LatencySketch::new();
    let mut exact: Vec<f64> = Vec::with_capacity(N);
    let mut x = 0x9e3779b97f4a7c15u64;
    for i in 0..N {
        // A serving-shaped mixture: mostly ~2-20 ms inter-token gaps, a
        // prefill-heavy TTFT band at ~100-400 ms, and a preempted tail
        // out to tens of seconds.
        let u = unit(&mut x);
        let v = if i % 10 == 9 {
            0.1 + 0.3 * u
        } else if i % 997 == 0 {
            1.0 + 30.0 * u * u
        } else {
            0.002 + 0.018 * u
        };
        sketch.record(v);
        exact.push(v);
    }
    assert_eq!(sketch.count(), N as u64);
    // O(1) memory in the sample count: the bucket map is range-bounded.
    assert!(
        sketch.bucket_count() < 2500,
        "expected a range-bounded sketch, got {} buckets for {N} samples",
        sketch.bucket_count()
    );

    let streamed = Percentiles::from_sketch(&sketch);
    let oracle = Percentiles::from_unsorted(exact.clone());
    for (got, want, name) in [
        (streamed.p50, oracle.p50, "p50"),
        (streamed.p95, oracle.p95, "p95"),
        (streamed.p99, oracle.p99, "p99"),
    ] {
        let tol = DEFAULT_SKETCH_ERROR * want.abs() + 1e-12;
        assert!(
            (got - want).abs() <= tol,
            "{name}: sketch {got} vs exact {want} (tol {tol})"
        );
    }

    // Exact extremes and count survive alongside the bounded quantiles.
    exact.sort_by(f64::total_cmp);
    assert_eq!(sketch.quantile(0.0), exact[0]);
    assert_eq!(sketch.quantile(1.0), exact[N - 1]);
}
