//! End-to-end invariants of the request-lifecycle tracing path, driven
//! through the facade against a real decode-serving run under KV
//! pressure (preemptions, swap transfers, restores — the stall phases
//! the breakdown exists to meter).
//!
//! The acceptance criteria pinned here:
//! - per-request phase breakdowns (queue + prefill + decode + stall)
//!   sum to the request's end-to-end latency within 1e-6 s;
//! - the Chrome export parses as a valid `trace_event` JSON array;
//! - a disabled sink is observationally free: the traced entry point
//!   with tracing off produces a report identical to the untraced one.

use pit::gpusim::DeviceSpec;
use pit::models::ModelConfig;
use pit::serve::decode::{
    simulate_decode_trace, simulate_decode_trace_traced, DecodePolicy, DecodeServeConfig,
    PreemptPolicy,
};
use pit::trace::{chrome_trace_json, reduce_spans, JsonValue, TraceSink, RESERVED_LANES};
use pit::workloads::{DatasetSpec, DecodeSpec, DecodeTrace};

/// A KV-pressured swap run: short prompts, heavy-tailed outputs, a pool
/// a few contexts deep — every lifecycle event type fires.
fn pressured_config() -> DecodeServeConfig {
    DecodeServeConfig::builder(ModelConfig::opt("1.3B"), DeviceSpec::a100_80gb())
        .policy(DecodePolicy::ContinuousPaddingFree { token_budget: 256 })
        .kv_pages(192)
        .preempt(PreemptPolicy::SwapToHost)
        .build()
        .expect("valid pressured config")
}

fn pressured_trace() -> DecodeTrace {
    DecodeTrace::poisson(
        &DatasetSpec::cola(),
        &DecodeSpec::summarization(),
        48,
        400.0,
        43,
    )
}

#[test]
fn breakdown_phases_sum_to_end_to_end_latency() {
    let sink = TraceSink::enabled();
    let report = simulate_decode_trace_traced(&pressured_config(), &pressured_trace(), &sink);

    let records = sink.snapshot();
    assert!(!records.is_empty(), "an enabled sink records the run");
    let spans = reduce_spans(&records);
    assert_eq!(
        spans.values().filter(|s| s.finished).count(),
        report.requests,
        "every served request closed its lifecycle"
    );
    for (seq, span) in &spans {
        let e2e = span.end_s - span.arrival_s;
        assert!(
            (span.total_s() - e2e).abs() < 1e-6,
            "seq {seq}: phases sum to {} but e2e is {e2e}",
            span.total_s()
        );
        for (name, v) in [
            ("queue", span.queue_s),
            ("prefill", span.prefill_s),
            ("decode", span.decode_s),
            ("stall", span.stall_s),
        ] {
            assert!(v >= 0.0, "seq {seq}: negative {name} phase {v}");
        }
    }

    // The run was actually pressured: someone stalled, and the summary
    // in the report averages exactly the finished spans.
    let b = report.breakdown.expect("enabled sink yields a breakdown");
    assert_eq!(b.requests, report.requests);
    assert!(
        b.mean_stall_s > 0.0,
        "swap preemption must show up as stall"
    );
    let mean_e2e: f64 = spans
        .values()
        .filter(|s| s.finished)
        .map(|s| s.end_s - s.arrival_s)
        .sum::<f64>()
        / b.requests as f64;
    assert!(
        (b.mean_total_s() - mean_e2e).abs() < 1e-6,
        "summary total {} vs mean e2e {mean_e2e}",
        b.mean_total_s()
    );
}

#[test]
fn chrome_export_is_a_valid_trace_event_array() {
    let sink = TraceSink::enabled();
    simulate_decode_trace_traced(&pressured_config(), &pressured_trace(), &sink);
    let records = sink.snapshot();
    let json = chrome_trace_json(&records);
    let v = JsonValue::parse(&json).expect("export parses as JSON");
    let arr = v.as_array().expect("top level is an array");
    assert!(arr.len() > records.len() / 2, "events were rendered");

    let mut phases = std::collections::BTreeSet::new();
    for ev in arr {
        let obj = ev.as_object().expect("every event is an object");
        let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let ph = get("ph").and_then(JsonValue::as_str).expect("has ph");
        assert!(["X", "i", "M"].contains(&ph), "unexpected phase {ph:?}");
        phases.insert(ph.to_string());
        assert!(get("ts").and_then(JsonValue::as_f64).is_some(), "has ts");
        assert_eq!(get("pid").and_then(JsonValue::as_f64), Some(1.0));
        assert!(get("tid").and_then(JsonValue::as_f64).is_some(), "has tid");
        if ph == "X" {
            let dur = get("dur").and_then(JsonValue::as_f64).expect("X has dur");
            assert!(dur >= 0.0, "negative duration {dur}");
        }
    }
    // All three shapes appear: lanes are named (M), steps/phases span
    // time (X), lifecycle markers are instants (i).
    assert_eq!(phases.len(), 3, "expected M, X and i events: {phases:?}");
    // Device and link lanes are labelled, and the swap pressure painted
    // actual transfers onto the link lanes.
    for needle in [
        r#""name":"device""#,
        r#""name":"pcie d2h""#,
        r#""name":"pcie h2d""#,
        r#""name":"swap_out""#,
        r#""name":"swap_in""#,
    ] {
        assert!(json.contains(needle), "missing {needle} in export");
    }
}

#[test]
fn disabled_sink_is_observationally_free() {
    // JIT-search cost is modelled (Algorithm 1's candidate count), not
    // measured, so the virtual clock replays bit-identically even under
    // KV pressure — where a timing wobble would flip preemption victims.
    // The traced and untraced entry points must therefore produce
    // *exactly* equal reports, breakdown aside.
    let cfg = pressured_config();
    let trace = pressured_trace();
    let untraced = simulate_decode_trace(&cfg, &trace);
    assert!(
        untraced.kv.preemptions > 0 || untraced.swap_preemptions > 0,
        "equivalence must be exercised under pressure"
    );
    let disabled = TraceSink::disabled();
    let traced_off = simulate_decode_trace_traced(&cfg, &trace, &disabled);
    assert!(!disabled.is_enabled());
    assert!(
        disabled.snapshot().is_empty(),
        "disabled sink records nothing"
    );
    assert!(untraced.breakdown.is_none() && untraced.blame.is_none());
    assert!(
        traced_off.breakdown.is_none() && traced_off.blame.is_none(),
        "no breakdown or blame without a sink"
    );
    assert_eq!(untraced, traced_off, "disabled sink is exactly free");
    assert!(untraced.ledger.conserved());

    // Tracing on perturbs nothing but the trace-derived report blocks:
    // the trace rides the virtual clock as pure observation, so every
    // scheduling decision and counter is identical to the untraced run.
    let sink = TraceSink::enabled();
    let mut traced_on = simulate_decode_trace_traced(&cfg, &trace, &sink);
    assert!(traced_on.breakdown.is_some());
    assert!(traced_on.blame.is_some());
    traced_on.breakdown = None;
    traced_on.blame = None;
    assert_eq!(
        untraced, traced_on,
        "tracing only adds the breakdown and blame blocks"
    );
    // Sequence lanes stay clear of the reserved device/link lanes.
    assert!(sink
        .snapshot()
        .iter()
        .all(|r| r.lane < RESERVED_LANES || r.lane == pit::trace::DEVICE_LANE));
}
