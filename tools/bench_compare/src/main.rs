//! `bench_compare` — diff two `BENCH_*.json` documents (or two
//! `METRICS_*.prom` expositions) metric by metric.
//!
//! ```bash
//! cargo run --release --bin bench_compare -- baseline/BENCH_decode.json BENCH_decode.json
//! cargo run --release --bin bench_compare -- baseline/METRICS_sparse.prom METRICS_sparse.prom
//! ```
//!
//! JSON files are parsed with `pit_trace`'s reader and flattened to
//! dotted numeric paths (`heavy_hitter.itl.p95`, …); a `.prom` file is
//! parsed as a Prometheus text exposition and flattened to
//! `family_suffix{labels}` paths instead. Both sides are joined on path.
//! Changes beyond the threshold (default 2%, `--threshold 0.05` for 5%)
//! are printed worst-first and labelled **regression** / **improvement**
//! when the metric's good direction is known (`*_per_s`, hit counters,
//! utilization and SLO attainment up; latencies, waste, preemptions,
//! stalls, idle time and GPU time down), or **change** when it is not.
//! `--json` swaps the report for a machine-readable JSON document on
//! stdout (same fields, same ordering). Exit status is 0 unless
//! `--strict` is given and a regression was found — CI runs it warn-only
//! against the committed baselines and strict against same-commit
//! replays, where *any* drift is a determinism bug.

use pit_trace::{parse_exposition, JsonValue};
use std::process::ExitCode;

/// Flattens every numeric leaf into (dotted path, value).
fn flatten(prefix: &str, v: &JsonValue, out: &mut Vec<(String, f64)>) {
    match v {
        JsonValue::Num(n) => out.push((prefix.to_string(), *n)),
        JsonValue::Bool(b) => out.push((prefix.to_string(), f64::from(u8::from(*b)))),
        JsonValue::Obj(entries) => {
            for (k, child) in entries {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, child, out);
            }
        }
        JsonValue::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), child, out);
            }
        }
        JsonValue::Null | JsonValue::Str(_) => {}
    }
}

/// Which direction is good for a metric, judged by its leaf name.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
    Neutral,
}

/// Direction rules for exposition paths (`family_suffix{labels}`),
/// judged by family name. Blame attribution is deliberately neutral: a
/// cause's share moving is a mix shift to look at, not a score.
fn prom_direction(path: &str) -> Direction {
    let family = path.split('{').next().unwrap_or(path);
    if family.starts_with("pit_blame_") {
        return Direction::Neutral;
    }
    let higher = [
        "pit_tokens_per_second",
        "pit_device_mfu",
        "pit_device_busy_fraction",
        "pit_requests_total",
        "pit_real_tokens_total",
        "pit_kv_attended_fraction",
    ];
    let lower = [
        "pit_ttft_seconds",
        "pit_itl_seconds",
        "pit_e2e_seconds",
        "pit_request_latency_seconds",
        "pit_rejected_total",
        "pit_recomputed_tokens_total",
        "pit_processed_tokens_total",
        "pit_padding_waste_fraction",
        "pit_device_idle_seconds_total",
        "pit_device_swap_d2h_stall_seconds_total",
        "pit_device_swap_h2d_stall_seconds_total",
        "pit_device_clock_seconds_total",
    ];
    if higher.contains(&family) {
        Direction::HigherIsBetter
    } else if lower.iter().any(|l| family.starts_with(l)) {
        // starts_with also catches the `_sum`/`_count` suffixes the
        // summary families append.
        Direction::LowerIsBetter
    } else {
        Direction::Neutral
    }
}

fn direction(path: &str) -> Direction {
    if path.starts_with("pit_") {
        return prom_direction(path);
    }
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let higher = [
        "tokens_per_s",
        "hits",
        "hit_rate",
        "requests",
        "real_tokens",
        "mfu",
        "busy_fraction",
        "attainment",
    ];
    let lower_exact = [
        "p50",
        "p95",
        "p99",
        "gpu_time_s",
        "wall_time_s",
        "preemptions",
        "recomputed_tokens",
        "rejected",
        "evictions",
        "misses",
        "swap_fallbacks",
        "padded_tokens",
        "processed_tokens",
        "idle_ps",
        "burn_rate",
    ];
    if higher.contains(&leaf) {
        Direction::HigherIsBetter
    } else if lower_exact.contains(&leaf)
        || leaf.ends_with("_waste")
        || leaf.ends_with("fragmentation")
        || leaf.ends_with("_busy_s")
        || leaf.ends_with("_stall_ps")
    {
        Direction::LowerIsBetter
    } else {
        Direction::Neutral
    }
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    if path.ends_with(".prom") {
        let expo = parse_exposition(&text).map_err(|e| format!("{path}: {e}"))?;
        for family in expo.families() {
            for s in &family.samples {
                let mut key = format!("{}{}", family.name, s.suffix);
                if !s.labels.is_empty() {
                    key.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            key.push(',');
                        }
                        key.push_str(&format!("{k}=\"{v}\""));
                    }
                    key.push('}');
                }
                out.push((key, s.value));
            }
        }
    } else {
        let v = JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        flatten("", &v, &mut out);
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

struct Diff {
    path: String,
    old: f64,
    new: f64,
    rel: f64,
    dir: Direction,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut files: Vec<String> = Vec::new();
    let mut threshold = 0.02_f64;
    let mut strict = false;
    let mut json = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" => match args.next().as_deref().map(str::parse) {
                Some(Ok(t)) => threshold = t,
                _ => {
                    eprintln!("--threshold needs a number");
                    return ExitCode::from(2);
                }
            },
            "--strict" => strict = true,
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_compare OLD.{{json|prom}} NEW.{{json|prom}} [--threshold 0.02] [--strict] [--json]"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_string()),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        eprintln!("usage: bench_compare OLD.{{json|prom}} NEW.{{json|prom}} [--threshold 0.02] [--strict] [--json]");
        return ExitCode::from(2);
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    let mut diffs: Vec<Diff> = Vec::new();
    // Metric paths present in only one document: removed (only in old)
    // or added (only in new). These are reported by name — a renamed or
    // dropped metric is a schema change, not something to diff silently
    // around.
    let mut removed: Vec<String> = Vec::new();
    let mut added: Vec<String> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some((po, vo)), Some((pn, vn))) if po == pn => {
                let denom = vo.abs().max(1e-12);
                diffs.push(Diff {
                    path: po.clone(),
                    old: *vo,
                    new: *vn,
                    rel: (vn - vo) / denom,
                    dir: direction(po),
                });
                i += 1;
                j += 1;
            }
            (Some((po, _)), Some((pn, _))) => {
                if po < pn {
                    removed.push(po.clone());
                    i += 1;
                } else {
                    added.push(pn.clone());
                    j += 1;
                }
            }
            (Some((po, _)), None) => {
                removed.push(po.clone());
                i += 1;
            }
            (None, Some((pn, _))) => {
                added.push(pn.clone());
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    let (only_old, only_new) = (removed.len(), added.len());

    let mut notable: Vec<&Diff> = diffs.iter().filter(|d| d.rel.abs() >= threshold).collect();
    notable.sort_by(|a, b| b.rel.abs().total_cmp(&a.rel.abs()));
    let label_of = |d: &Diff| match (d.dir, d.rel > 0.0) {
        (Direction::HigherIsBetter, true) | (Direction::LowerIsBetter, false) => "improvement",
        (Direction::HigherIsBetter, false) | (Direction::LowerIsBetter, true) => "regression",
        (Direction::Neutral, _) => "change",
    };
    let regressions = notable
        .iter()
        .filter(|d| label_of(d) == "regression")
        .count();

    if json {
        // Machine-readable report: paths are dotted identifiers (no JSON
        // string metacharacters to escape), floats print in the same
        // shortest round-trip form the bench documents use.
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"old\":\"{old_path}\",\"new\":\"{new_path}\",\"threshold\":{threshold},\
             \"shared_metrics\":{},\"only_old\":{only_old},\"only_new\":{only_new},\
             \"removed\":[{}],\"added\":[{}],\
             \"regressions\":{regressions},\"notable\":[",
            diffs.len(),
            removed
                .iter()
                .map(|p| format!("\"{p}\""))
                .collect::<Vec<_>>()
                .join(","),
            added
                .iter()
                .map(|p| format!("\"{p}\""))
                .collect::<Vec<_>>()
                .join(","),
        ));
        for (i, d) in notable.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"label\":\"{}\",\"old\":{},\"new\":{},\"rel\":{}}}",
                d.path,
                label_of(d),
                d.old,
                d.new,
                d.rel
            ));
        }
        out.push_str("]}");
        println!("{out}");
        if strict && regressions > 0 {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "bench_compare: {} vs {} — {} shared metrics, {} beyond ±{:.1}% \
         ({} only in old, {} only in new)",
        old_path,
        new_path,
        diffs.len(),
        notable.len(),
        threshold * 100.0,
        only_old,
        only_new,
    );
    for d in &notable {
        let label = match label_of(d) {
            "regression" => "REGRESSION",
            other => other,
        };
        println!(
            "  {label:>11}  {:<48} {:>14.6} -> {:>14.6}  ({:+.1}%)",
            d.path,
            d.old,
            d.new,
            d.rel * 100.0
        );
    }
    if notable.is_empty() {
        println!("  no metric moved beyond the threshold");
    }
    for (label, paths) in [
        ("removed (only in old)", &removed),
        ("added (only in new)", &added),
    ] {
        if paths.is_empty() {
            continue;
        }
        println!("  {label}:");
        for p in paths {
            println!("    {p}");
        }
    }
    println!(
        "summary: {} regressions / {} improvements / {} neutral changes",
        regressions,
        notable
            .iter()
            .filter(|d| label_of(d) == "improvement")
            .count(),
        notable
            .iter()
            .filter(|d| d.dir == Direction::Neutral)
            .count(),
    );
    if strict && regressions > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
