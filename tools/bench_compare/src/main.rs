//! `bench_compare` — diff two `BENCH_*.json` documents metric by metric.
//!
//! ```bash
//! cargo run --release --bin bench_compare -- baseline/BENCH_decode.json BENCH_decode.json
//! ```
//!
//! Both files are parsed with `pit_trace`'s JSON reader, flattened to
//! dotted numeric paths (`heavy_hitter.itl.p95`, …) and joined on path.
//! Changes beyond the threshold (default 2%, `--threshold 0.05` for 5%)
//! are printed worst-first and labelled **regression** / **improvement**
//! when the metric's good direction is known (`*_per_s`, hit counters,
//! utilization and SLO attainment up; latencies, waste, preemptions,
//! stalls, idle time and GPU time down), or **change** when it is not.
//! `--json` swaps the report for a machine-readable JSON document on
//! stdout (same fields, same ordering). Exit status is 0 unless
//! `--strict` is given and a regression was found — CI runs it warn-only
//! against the committed baselines and strict against same-commit
//! replays, where *any* drift is a determinism bug.

use pit_trace::JsonValue;
use std::process::ExitCode;

/// Flattens every numeric leaf into (dotted path, value).
fn flatten(prefix: &str, v: &JsonValue, out: &mut Vec<(String, f64)>) {
    match v {
        JsonValue::Num(n) => out.push((prefix.to_string(), *n)),
        JsonValue::Bool(b) => out.push((prefix.to_string(), f64::from(u8::from(*b)))),
        JsonValue::Obj(entries) => {
            for (k, child) in entries {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, child, out);
            }
        }
        JsonValue::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), child, out);
            }
        }
        JsonValue::Null | JsonValue::Str(_) => {}
    }
}

/// Which direction is good for a metric, judged by its leaf name.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
    Neutral,
}

fn direction(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let higher = [
        "tokens_per_s",
        "hits",
        "hit_rate",
        "requests",
        "real_tokens",
        "mfu",
        "busy_fraction",
        "attainment",
    ];
    let lower_exact = [
        "p50",
        "p95",
        "p99",
        "gpu_time_s",
        "wall_time_s",
        "preemptions",
        "recomputed_tokens",
        "rejected",
        "evictions",
        "misses",
        "swap_fallbacks",
        "padded_tokens",
        "processed_tokens",
        "idle_ps",
        "burn_rate",
    ];
    if higher.contains(&leaf) {
        Direction::HigherIsBetter
    } else if lower_exact.contains(&leaf)
        || leaf.ends_with("_waste")
        || leaf.ends_with("fragmentation")
        || leaf.ends_with("_busy_s")
        || leaf.ends_with("_stall_ps")
    {
        Direction::LowerIsBetter
    } else {
        Direction::Neutral
    }
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    flatten("", &v, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

struct Diff {
    path: String,
    old: f64,
    new: f64,
    rel: f64,
    dir: Direction,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut files: Vec<String> = Vec::new();
    let mut threshold = 0.02_f64;
    let mut strict = false;
    let mut json = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" => match args.next().as_deref().map(str::parse) {
                Some(Ok(t)) => threshold = t,
                _ => {
                    eprintln!("--threshold needs a number");
                    return ExitCode::from(2);
                }
            },
            "--strict" => strict = true,
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_compare OLD.json NEW.json [--threshold 0.02] [--strict] [--json]"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_string()),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        eprintln!("usage: bench_compare OLD.json NEW.json [--threshold 0.02] [--strict] [--json]");
        return ExitCode::from(2);
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    let mut diffs: Vec<Diff> = Vec::new();
    let mut only_old = 0usize;
    let mut only_new = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some((po, vo)), Some((pn, vn))) if po == pn => {
                let denom = vo.abs().max(1e-12);
                diffs.push(Diff {
                    path: po.clone(),
                    old: *vo,
                    new: *vn,
                    rel: (vn - vo) / denom,
                    dir: direction(po),
                });
                i += 1;
                j += 1;
            }
            (Some((po, _)), Some((pn, _))) => {
                if po < pn {
                    only_old += 1;
                    i += 1;
                } else {
                    only_new += 1;
                    j += 1;
                }
            }
            (Some(_), None) => {
                only_old += 1;
                i += 1;
            }
            (None, Some(_)) => {
                only_new += 1;
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }

    let mut notable: Vec<&Diff> = diffs.iter().filter(|d| d.rel.abs() >= threshold).collect();
    notable.sort_by(|a, b| b.rel.abs().total_cmp(&a.rel.abs()));
    let label_of = |d: &Diff| match (d.dir, d.rel > 0.0) {
        (Direction::HigherIsBetter, true) | (Direction::LowerIsBetter, false) => "improvement",
        (Direction::HigherIsBetter, false) | (Direction::LowerIsBetter, true) => "regression",
        (Direction::Neutral, _) => "change",
    };
    let regressions = notable
        .iter()
        .filter(|d| label_of(d) == "regression")
        .count();

    if json {
        // Machine-readable report: paths are dotted identifiers (no JSON
        // string metacharacters to escape), floats print in the same
        // shortest round-trip form the bench documents use.
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"old\":\"{old_path}\",\"new\":\"{new_path}\",\"threshold\":{threshold},\
             \"shared_metrics\":{},\"only_old\":{only_old},\"only_new\":{only_new},\
             \"regressions\":{regressions},\"notable\":[",
            diffs.len(),
        ));
        for (i, d) in notable.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"label\":\"{}\",\"old\":{},\"new\":{},\"rel\":{}}}",
                d.path,
                label_of(d),
                d.old,
                d.new,
                d.rel
            ));
        }
        out.push_str("]}");
        println!("{out}");
        if strict && regressions > 0 {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "bench_compare: {} vs {} — {} shared metrics, {} beyond ±{:.1}% \
         ({} only in old, {} only in new)",
        old_path,
        new_path,
        diffs.len(),
        notable.len(),
        threshold * 100.0,
        only_old,
        only_new,
    );
    for d in &notable {
        let label = match label_of(d) {
            "regression" => "REGRESSION",
            other => other,
        };
        println!(
            "  {label:>11}  {:<48} {:>14.6} -> {:>14.6}  ({:+.1}%)",
            d.path,
            d.old,
            d.new,
            d.rel * 100.0
        );
    }
    if notable.is_empty() {
        println!("  no metric moved beyond the threshold");
    }
    println!(
        "summary: {} regressions / {} improvements / {} neutral changes",
        regressions,
        notable
            .iter()
            .filter(|d| label_of(d) == "improvement")
            .count(),
        notable
            .iter()
            .filter(|d| d.dir == Direction::Neutral)
            .count(),
    );
    if strict && regressions > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
