//! `pit_top`: a live terminal dashboard over a `pit_trace` scrape
//! endpoint.
//!
//! Polls `GET /metrics`, `/series` and `/slo` on a
//! [`pit_trace::ScrapeServer`] (std `TcpStream`, no HTTP client crate)
//! and redraws a compact dashboard each interval: token throughput,
//! TTFT/ITL/e2e percentiles, per-window p95 sparklines, the top wait
//! and blame causes, and any firing SLO/drift alarms. Table rendering
//! is shared with `trace_explain`.
//!
//! ```text
//! pit_top <host:port | http://host:port> [--once] [--frames N] [--interval-ms N]
//! ```
//!
//! `--once` draws a single frame without clearing the screen (CI and
//! scripting); `--frames N` exits after N redraws; the default interval
//! is 1000 ms.

use pit_trace::{parse_exposition, Exposition, JsonValue, MetricKind};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;
use trace_explain::{Align, Table};

const IO_TIMEOUT: Duration = Duration::from_millis(2000);
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Normalizes the target argument to `host:port`.
fn parse_target(arg: &str) -> Result<String, String> {
    let hostport = arg
        .strip_prefix("http://")
        .unwrap_or(arg)
        .trim_end_matches('/');
    if hostport.starts_with(':') {
        return Ok(format!("127.0.0.1{hostport}"));
    }
    if !hostport.contains(':') {
        return Err(format!("target '{arg}' has no port (want host:port)"));
    }
    Ok(hostport.to_string())
}

/// One `GET path` against the scrape endpoint; returns the body of a
/// 200 response.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(IO_TIMEOUT)))
        .map_err(|e| format!("socket timeout: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response (no header/body split)".to_string())?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("{path}: {status}"));
    }
    Ok(body.to_string())
}

/// The dashboard's view of one `/metrics` scrape.
#[derive(Default, Clone)]
struct Snapshot {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    /// `(family, count, p50, p95, p99)` rows, milliseconds.
    summaries: Vec<(String, f64, f64, f64, f64)>,
    /// `(cause, seconds)` from `pit_hub_wait_seconds_total{cause=...}`.
    waits: Vec<(String, f64)>,
    /// `(cause, seconds)` from `pit_blame_*_seconds_total`.
    blame: Vec<(String, f64)>,
}

fn snapshot_from(expo: &Exposition) -> Snapshot {
    let mut snap = Snapshot::default();
    for fam in expo.families() {
        match fam.kind {
            MetricKind::Counter => {
                if fam.name == "pit_hub_wait_seconds_total" {
                    for s in &fam.samples {
                        if let Some((_, cause)) = s.labels.iter().find(|(k, _)| k == "cause") {
                            snap.waits.push((cause.clone(), s.value));
                        }
                    }
                } else if let Some(cause) = fam
                    .name
                    .strip_prefix("pit_blame_")
                    .and_then(|n| n.strip_suffix("_seconds_total"))
                {
                    let total: f64 = fam.samples.iter().map(|s| s.value).sum();
                    snap.blame.push((cause.to_string(), total));
                } else {
                    let total: f64 = fam.samples.iter().map(|s| s.value).sum();
                    snap.counters.insert(fam.name.clone(), total);
                }
            }
            MetricKind::Gauge => {
                if let Some(s) = fam.samples.first() {
                    snap.gauges.insert(fam.name.clone(), s.value);
                }
            }
            MetricKind::Summary => {
                let q = |want: &str| {
                    fam.samples
                        .iter()
                        .find(|s| {
                            s.suffix.is_empty()
                                && s.labels.iter().any(|(k, v)| k == "quantile" && v == want)
                        })
                        .map(|s| s.value * 1e3)
                        .unwrap_or(f64::NAN)
                };
                let count = fam
                    .samples
                    .iter()
                    .find(|s| s.suffix == "_count")
                    .map(|s| s.value)
                    .unwrap_or(0.0);
                snap.summaries
                    .push((fam.name.clone(), count, q("0.5"), q("0.95"), q("0.99")));
            }
        }
    }
    snap.waits
        .sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    snap.blame
        .sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    snap
}

/// Scales `values` into a `▁▂▃▄▅▆▇█` strip (max-normalized).
fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().fold(0.0_f64, f64::max);
    if values.is_empty() || max <= 0.0 {
        return String::new();
    }
    values
        .iter()
        .map(|&v| {
            let i = ((v / max) * (SPARK.len() - 1) as f64).round() as usize;
            SPARK[i.min(SPARK.len() - 1)]
        })
        .collect()
}

/// Pulls each window's `{key}` from the `/series` body.
fn series_values(series: &JsonValue, key: &str) -> Vec<f64> {
    let Some(obj) = series.as_object() else {
        return Vec::new();
    };
    let Some(windows) = obj
        .iter()
        .find(|(k, _)| k == "windows")
        .and_then(|(_, v)| v.as_array())
    else {
        return Vec::new();
    };
    windows
        .iter()
        .filter_map(|w| {
            let o = w.as_object()?;
            o.iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_f64())
        })
        .collect()
}

/// Flattens the `/slo` body's drift alarms into display lines.
fn alarm_lines(slo: &JsonValue) -> Vec<String> {
    let Some(obj) = slo.as_object() else {
        return Vec::new();
    };
    let Some(drift) = obj
        .iter()
        .find(|(k, _)| k == "drift")
        .and_then(|(_, v)| v.as_array())
    else {
        return Vec::new();
    };
    drift
        .iter()
        .filter_map(|a| {
            let o = a.as_object()?;
            let get_s = |k: &str| {
                o.iter()
                    .find(|(key, _)| key == k)
                    .and_then(|(_, v)| v.as_str())
                    .unwrap_or("?")
                    .to_string()
            };
            let get_f = |k: &str| {
                o.iter()
                    .find(|(key, _)| key == k)
                    .and_then(|(_, v)| v.as_f64())
                    .unwrap_or(f64::NAN)
            };
            Some(format!(
                "{} {} q{:.2}: baseline {:.4} -> observed {:.4} ({:+.1}%)",
                get_s("kind"),
                get_s("metric"),
                get_f("quantile"),
                get_f("baseline"),
                get_f("observed"),
                100.0 * get_f("rel_change"),
            ))
        })
        .collect()
}

/// Token throughput between two scrapes: Δtokens / Δhub-clock, falling
/// back to whole-run totals when the clock has not advanced.
fn throughput(prev: Option<&Snapshot>, cur: &Snapshot) -> f64 {
    let tokens = |s: &Snapshot| {
        s.counters
            .get("pit_hub_decode_tokens_total")
            .copied()
            .unwrap_or(0.0)
            + s.counters
                .get("pit_hub_batch_real_tokens_total")
                .copied()
                .unwrap_or(0.0)
    };
    let clock = |s: &Snapshot| {
        s.gauges
            .get("pit_hub_clock_seconds")
            .copied()
            .unwrap_or(0.0)
    };
    if let Some(p) = prev {
        let dt = clock(cur) - clock(p);
        if dt > 1e-9 {
            return (tokens(cur) - tokens(p)) / dt;
        }
    }
    let t = clock(cur);
    if t > 1e-9 {
        tokens(cur) / t
    } else {
        0.0
    }
}

/// Renders one full dashboard frame.
fn render_frame(
    target: &str,
    prev: Option<&Snapshot>,
    cur: &Snapshot,
    series: &JsonValue,
    slo: &JsonValue,
) -> String {
    let mut out = String::new();
    let g = |k: &str| cur.gauges.get(k).copied().unwrap_or(f64::NAN);
    let c = |k: &str| cur.counters.get(k).copied().unwrap_or(0.0);
    out.push_str(&format!(
        "pit_top — {target}   clock {:.2}s   run {}\n",
        g("pit_hub_clock_seconds"),
        if g("pit_hub_run_complete") >= 1.0 {
            "complete"
        } else {
            "in flight"
        },
    ));
    out.push_str(&format!(
        "throughput {:.0} tok/s   kv occupancy {:.0}% (peak {:.0}%)   queue depth {:.0}\n",
        throughput(prev, cur),
        100.0 * g("pit_hub_kv_occupancy"),
        100.0 * g("pit_hub_kv_occupancy_peak"),
        g("pit_hub_admission_queue_depth").max(0.0),
    ));
    out.push_str(&format!(
        "admitted {:.0}   finished {:.0}   rejected {:.0}   preemptions {:.0}   steps {:.0}\n",
        c("pit_hub_admitted_total"),
        c("pit_hub_finished_total"),
        c("pit_hub_rejected_total"),
        c("pit_hub_preemptions_total"),
        c("pit_hub_steps_total"),
    ));
    if g("pit_hub_ttft_attainment").is_finite() {
        out.push_str(&format!(
            "slo: ttft attainment {:.1}%   itl attainment {:.1}%   worst-window burn {:.2}\n",
            100.0 * g("pit_hub_ttft_attainment"),
            100.0 * g("pit_hub_itl_attainment"),
            g("pit_hub_worst_window_burn_rate"),
        ));
    }

    if !cur.summaries.is_empty() {
        let mut t = Table::new(&[
            ("latency", Align::Left),
            ("count", Align::Right),
            ("p50_ms", Align::Right),
            ("p95_ms", Align::Right),
            ("p99_ms", Align::Right),
        ]);
        for (name, count, p50, p95, p99) in &cur.summaries {
            t.row(vec![
                name.clone(),
                format!("{count:.0}"),
                format!("{p50:.2}"),
                format!("{p95:.2}"),
                format!("{p99:.2}"),
            ]);
        }
        out.push('\n');
        out.push_str(&t.render("  "));
    }

    for (label, key) in [("ttft p95", "ttft_p95_s"), ("itl p95", "itl_p95_s")] {
        let strip = sparkline(&series_values(series, key));
        if !strip.is_empty() {
            out.push_str(&format!("  {label:<9} {strip}\n"));
        }
    }

    for (label, pool) in [("top waits", &cur.waits), ("top blame", &cur.blame)] {
        if pool.is_empty() {
            continue;
        }
        let total: f64 = pool.iter().map(|(_, s)| s).sum();
        let mut t = Table::new(&[
            ("cause", Align::Left),
            ("seconds", Align::Right),
            ("share", Align::Right),
        ]);
        for (cause, s) in pool.iter().take(5) {
            let share = if total > 0.0 {
                format!("{:.1}%", 100.0 * s / total)
            } else {
                "-".to_string()
            };
            t.row(vec![cause.clone(), format!("{s:.4}"), share]);
        }
        out.push_str(&format!("\n  {label}:\n"));
        out.push_str(&t.render("    "));
    }

    let alarms = alarm_lines(slo);
    out.push('\n');
    if alarms.is_empty() {
        out.push_str("  alarms: none firing\n");
    } else {
        out.push_str(&format!("  alarms firing ({}):\n", alarms.len()));
        for a in &alarms {
            out.push_str(&format!("    ! {a}\n"));
        }
    }
    out
}

fn run(target: &str, frames: usize, interval: Duration, clear: bool) -> Result<(), String> {
    let mut prev: Option<Snapshot> = None;
    for frame in 0..frames {
        let metrics = http_get(target, "/metrics")?;
        let expo = parse_exposition(&metrics).map_err(|e| format!("/metrics: {e}"))?;
        let series =
            JsonValue::parse(&http_get(target, "/series")?).map_err(|e| format!("/series: {e}"))?;
        let slo = JsonValue::parse(&http_get(target, "/slo")?).map_err(|e| format!("/slo: {e}"))?;
        let cur = snapshot_from(&expo);
        if clear {
            // Clear screen and home the cursor between redraws.
            print!("\x1b[2J\x1b[H");
        }
        print!(
            "{}",
            render_frame(target, prev.as_ref(), &cur, &series, &slo)
        );
        std::io::stdout()
            .flush()
            .map_err(|e| format!("stdout: {e}"))?;
        prev = Some(cur);
        if frame + 1 < frames {
            std::thread::sleep(interval);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = None;
    let mut frames = usize::MAX;
    let mut interval = Duration::from_millis(1000);
    let mut clear = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--once" => {
                frames = 1;
                clear = false;
            }
            "--frames" => {
                i += 1;
                frames = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--frames wants a number");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--interval-ms" => {
                i += 1;
                interval = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(ms) => Duration::from_millis(ms),
                    None => {
                        eprintln!("--interval-ms wants a number");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(target) = target else {
        eprintln!(
            "usage: pit_top <host:port | http://host:port> [--once] [--frames N] [--interval-ms N]"
        );
        return ExitCode::FAILURE;
    };
    let target = match parse_target(&target) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&target, frames, interval, clear) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pit_top: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_trace::{HubConfig, MetricsHub, ScrapeServer, TraceEvent};
    use std::sync::Arc;

    #[test]
    fn parse_target_normalizes() {
        assert_eq!(parse_target("http://1.2.3.4:9/").unwrap(), "1.2.3.4:9");
        assert_eq!(parse_target(":9100").unwrap(), "127.0.0.1:9100");
        assert_eq!(parse_target("h:1").unwrap(), "h:1");
        assert!(parse_target("no-port").is_err());
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().next_back(), Some('█'));
        assert_eq!(s.chars().next(), Some('▁'));
    }

    #[test]
    fn dashboard_renders_from_live_endpoint() {
        let hub = Arc::new(MetricsHub::new(HubConfig::default()));
        hub.on_record(0.05, 7, &TraceEvent::Admitted { arrival_s: 0.0 });
        hub.on_record(0.20, 7, &TraceEvent::FirstToken);
        hub.on_record(
            0.25,
            pit_trace::DEVICE_LANE,
            &TraceEvent::Step {
                prefill_rows: 64,
                decode_slots: 8,
                gpu_s: 0.2,
            },
        );
        hub.on_record(0.30, 7, &TraceEvent::Finished);
        let server = ScrapeServer::bind(hub, "127.0.0.1:0").expect("bind");
        let target = server.local_addr().to_string();

        let metrics = http_get(&target, "/metrics").expect("metrics");
        let expo = parse_exposition(&metrics).expect("parses");
        let cur = snapshot_from(&expo);
        let series =
            JsonValue::parse(&http_get(&target, "/series").expect("series")).expect("json");
        let slo = JsonValue::parse(&http_get(&target, "/slo").expect("slo")).expect("json");
        let frame = render_frame(&target, None, &cur, &series, &slo);
        assert!(frame.contains("throughput"), "{frame}");
        assert!(frame.contains("finished 1"), "{frame}");
        assert!(frame.contains("pit_hub_ttft_seconds"), "{frame}");
        assert!(frame.contains("alarms"), "{frame}");
        server.shutdown();
    }
}
