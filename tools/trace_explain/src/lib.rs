//! Explains where a serving run's time went.
//!
//! The library behind the `trace_explain` binary, also reused by
//! `pit_top` for its table rendering. Three input shapes are understood:
//!
//! - Chrome `TRACE_*.json` exports (top-level JSON array) — per-request
//!   cause seconds are re-derived from the rendered gap segments, the
//!   same exact-tiling discipline as `pit_trace::blame`;
//! - `BENCH_*.json` reports (top-level object) — every embedded `blame`
//!   summary is printed as a cause table straight from the report;
//! - `METRICS_*.prom` Prometheus text expositions (as written by the
//!   examples and served by `pit_trace::ScrapeServer` at `/metrics`) —
//!   latency summaries and the `pit_blame_*` / `pit_hub_wait_*` cause
//!   counters are printed as ranked tables via [`pit_trace::parse_exposition`].

use pit_trace::{parse_exposition, JsonValue, MetricKind};
use std::collections::BTreeMap;

/// The latency percentiles each table reports, highest last.
pub const PERCENTILES: [f64; 5] = [0.50, 0.90, 0.95, 0.99, 1.00];

/// Column alignment inside a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// A minimal fixed-width text table: headers, alignment per column,
/// rows of strings. Widths are computed from the content, so the same
/// renderer serves `trace_explain`'s cause tables and `pit_top`'s live
/// dashboard panes.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with one `(header, alignment)` pair per column.
    pub fn new(columns: &[(&str, Align)]) -> Self {
        Table {
            headers: columns.iter().map(|(h, _)| h.to_string()).collect(),
            aligns: columns.iter().map(|&(_, a)| a).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extras are dropped.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table, prefixing every line with `indent`.
    pub fn render(&self, indent: &str) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let empty = String::new();
        let line = |cells: &[String], out: &mut String| {
            out.push_str(indent);
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).unwrap_or(&empty);
                let pad = width.saturating_sub(cell.chars().count());
                if i > 0 {
                    out.push_str("  ");
                }
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        // No trailing pad on the last column.
                        if i + 1 < cols {
                            out.extend(std::iter::repeat_n(' ', pad));
                        }
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

fn field<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// One sequence lane reconstructed from a Chrome trace: per-cause
/// seconds (gap segments) summing exactly to its end-to-end span.
#[derive(Default)]
struct Lane {
    by_cause: BTreeMap<String, f64>,
}

impl Lane {
    fn e2e_s(&self) -> f64 {
        self.by_cause.values().sum()
    }
}

/// Nearest-rank quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Prints one percentile × top-cause table from per-request cause maps.
/// Each row aggregates the requests at or above that percentile's
/// latency — the population whose tail the row explains.
fn print_cause_table(label: &str, lanes: &[Lane]) {
    let mut e2es: Vec<f64> = lanes.iter().map(Lane::e2e_s).collect();
    e2es.sort_by(f64::total_cmp);
    println!("  {label} ({} requests):", lanes.len());
    println!(
        "    {:<6} {:>10}  {:<24} {:>6}  {:<24} {:>6}",
        "pct", "e2e_ms", "top cause", "share", "runner-up", "share"
    );
    for &q in &PERCENTILES {
        let cut = quantile(&e2es, q);
        let mut tail: BTreeMap<&str, f64> = BTreeMap::new();
        let mut total = 0.0;
        for lane in lanes.iter().filter(|l| l.e2e_s() >= cut) {
            for (cause, &s) in &lane.by_cause {
                *tail.entry(cause.as_str()).or_default() += s;
                total += s;
            }
        }
        // Deterministic order: seconds descending, then name.
        let mut ranked: Vec<(&str, f64)> = tail.into_iter().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        let share = |s: f64| {
            if total > 0.0 {
                format!("{:>5.1}%", 100.0 * s / total)
            } else {
                "    -".to_string()
            }
        };
        let top = ranked.first().copied().unwrap_or(("-", 0.0));
        let second = ranked.get(1).copied().unwrap_or(("-", 0.0));
        let pct = if q >= 1.0 {
            "max".to_string()
        } else {
            format!("p{:.0}", q * 100.0)
        };
        println!(
            "    {:<6} {:>10.2}  {:<24} {:>6}  {:<24} {:>6}",
            pct,
            cut * 1e3,
            top.0,
            share(top.1),
            second.0,
            share(second.1),
        );
    }
}

/// Explains a Chrome `TRACE_*.json` array: rebuilds each sequence
/// lane's per-cause seconds from its gap segments (pid 1, tids past the
/// fixed device/link lanes; exemplar lanes on other pids are the same
/// requests re-rendered, so they are skipped).
fn explain_trace(path: &str, events: &[JsonValue]) -> Result<(), String> {
    const TID_SEQ_BASE: f64 = 3.0;
    let mut lanes: BTreeMap<u64, Lane> = BTreeMap::new();
    let mut steps = 0usize;
    let mut device_s = 0.0_f64;
    for ev in events {
        let obj = ev.as_object().ok_or("event is not an object")?;
        let ph = field(obj, "ph").and_then(JsonValue::as_str).unwrap_or("");
        if ph != "X" {
            continue;
        }
        let pid = field(obj, "pid").and_then(JsonValue::as_f64).unwrap_or(0.0);
        let tid = field(obj, "tid").and_then(JsonValue::as_f64).unwrap_or(0.0);
        let name = field(obj, "name").and_then(JsonValue::as_str).unwrap_or("");
        let dur_s = field(obj, "dur").and_then(JsonValue::as_f64).unwrap_or(0.0) / 1e6;
        if pid != 1.0 {
            continue;
        }
        if tid == 0.0 && name == "step" {
            steps += 1;
            device_s += dur_s;
            continue;
        }
        if tid < TID_SEQ_BASE {
            continue; // link lanes: transfers, not request wait time
        }
        *lanes
            .entry(tid as u64)
            .or_default()
            .by_cause
            .entry(name.to_string())
            .or_default() += dur_s;
    }
    if lanes.is_empty() {
        return Err("no sequence-lane segments found".to_string());
    }
    println!(
        "{path}: {} requests, {steps} device steps ({:.1} ms busy)",
        lanes.len(),
        device_s * 1e3
    );
    let lanes: Vec<Lane> = lanes.into_values().collect();
    print_cause_table("e2e by percentile", &lanes);
    Ok(())
}

/// Recursively collects every `blame` summary object in a report,
/// remembering the dotted path it sits at.
fn find_blame<'a>(
    prefix: &str,
    v: &'a JsonValue,
    out: &mut Vec<(String, &'a [(String, JsonValue)])>,
) {
    if let Some(obj) = v.as_object() {
        for (k, child) in obj {
            let path = if prefix.is_empty() {
                k.clone()
            } else {
                format!("{prefix}.{k}")
            };
            if k == "blame" {
                if let Some(b) = child.as_object() {
                    if field(b, "causes").is_some() {
                        out.push((path.clone(), b));
                    }
                }
            }
            find_blame(&path, child, out);
        }
    } else if let Some(arr) = v.as_array() {
        for (i, child) in arr.iter().enumerate() {
            find_blame(&format!("{prefix}[{i}]"), child, out);
        }
    }
}

/// Explains a `BENCH_*.json` report: prints each embedded blame
/// summary's cause table (shares and sketch percentiles straight from
/// the report — no re-derivation).
fn explain_report(path: &str, root: &JsonValue) -> Result<(), String> {
    let mut blames = Vec::new();
    find_blame("", root, &mut blames);
    if blames.is_empty() {
        return Err("no blame summaries found (run with tracing enabled)".to_string());
    }
    println!(
        "{path}: {} blame summar{}",
        blames.len(),
        if blames.len() == 1 { "y" } else { "ies" }
    );
    for (at, b) in blames {
        let requests = field(b, "requests")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        let e2e_total = field(b, "e2e_total_s")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        println!(
            "  {at}: {requests:.0} finished, {:.1} ms total end-to-end",
            e2e_total * 1e3
        );
        println!(
            "    {:<24} {:>6} {:>6}  {:>10} {:>10} {:>10}",
            "cause", "e2e%", "ttft%", "p50_ms", "p95_ms", "p99_ms"
        );
        let causes = field(b, "causes")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[]);
        for c in causes {
            let Some(c) = c.as_object() else { continue };
            let get = |k: &str| field(c, k).and_then(JsonValue::as_f64).unwrap_or(0.0);
            println!(
                "    {:<24} {:>5.1}% {:>5.1}%  {:>10.2} {:>10.2} {:>10.2}",
                field(c, "cause").and_then(JsonValue::as_str).unwrap_or("?"),
                100.0 * get("e2e_share"),
                100.0 * get("ttft_share"),
                get("p50_s") * 1e3,
                get("p95_s") * 1e3,
                get("p99_s") * 1e3,
            );
        }
    }
    Ok(())
}

/// Strips a known cause-counter wrapping from a family name:
/// `pit_blame_decode_execute_seconds_total` → `decode_execute`.
fn blame_cause_name(family: &str) -> Option<&str> {
    family
        .strip_prefix("pit_blame_")?
        .strip_suffix("_seconds_total")
}

/// Explains a Prometheus text exposition (`METRICS_*.prom` file or a
/// `/metrics` scrape body): latency summaries as percentile rows, then
/// the blame-cause and wait-cause counters ranked by seconds.
fn explain_exposition(path: &str, text: &str) -> Result<(), String> {
    let expo = parse_exposition(text)?;
    println!("{path}: {} metric families", expo.families().len());

    let mut latency = Table::new(&[
        ("summary", Align::Left),
        ("count", Align::Right),
        ("p50_ms", Align::Right),
        ("p90_ms", Align::Right),
        ("p95_ms", Align::Right),
        ("p99_ms", Align::Right),
    ]);
    // (cause, seconds) pools for the two cause-counter conventions.
    let mut blame: Vec<(String, f64)> = Vec::new();
    let mut waits: Vec<(String, f64)> = Vec::new();
    for fam in expo.families() {
        match fam.kind {
            MetricKind::Summary => {
                let q = |want: &str| {
                    fam.samples
                        .iter()
                        .find(|s| {
                            s.suffix.is_empty()
                                && s.labels.iter().any(|(k, v)| k == "quantile" && v == want)
                        })
                        .map(|s| format!("{:.2}", s.value * 1e3))
                        .unwrap_or_else(|| "-".to_string())
                };
                let count = fam
                    .samples
                    .iter()
                    .find(|s| s.suffix == "_count")
                    .map(|s| format!("{:.0}", s.value))
                    .unwrap_or_else(|| "-".to_string());
                latency.row(vec![
                    fam.name.clone(),
                    count,
                    q("0.5"),
                    q("0.9"),
                    q("0.95"),
                    q("0.99"),
                ]);
            }
            MetricKind::Counter => {
                if let Some(cause) = blame_cause_name(&fam.name) {
                    let total: f64 = fam.samples.iter().map(|s| s.value).sum();
                    blame.push((cause.to_string(), total));
                } else if fam.name == "pit_hub_wait_seconds_total" {
                    for s in &fam.samples {
                        let cause = s
                            .labels
                            .iter()
                            .find(|(k, _)| k == "cause")
                            .map(|(_, v)| v.clone())
                            .unwrap_or_else(|| "?".to_string());
                        waits.push((cause, s.value));
                    }
                }
            }
            MetricKind::Gauge => {}
        }
    }

    if !latency.is_empty() {
        println!("  latency summaries:");
        print!("{}", latency.render("    "));
    }
    for (label, mut pool) in [("blame summary", blame), ("wait causes", waits)] {
        if pool.is_empty() {
            continue;
        }
        pool.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let total: f64 = pool.iter().map(|(_, s)| s).sum();
        let mut t = Table::new(&[
            ("cause", Align::Left),
            ("seconds", Align::Right),
            ("share", Align::Right),
        ]);
        for (cause, s) in &pool {
            let share = if total > 0.0 {
                format!("{:.1}%", 100.0 * s / total)
            } else {
                "-".to_string()
            };
            t.row(vec![cause.clone(), format!("{s:.4}"), share]);
        }
        println!("  {label} ({} causes, top cause first):", pool.len());
        print!("{}", t.render("    "));
    }
    if latency.is_empty() {
        // Counter-only expositions still explain something; an empty
        // exposition does not.
        if expo.families().is_empty() {
            return Err("exposition carries no families".to_string());
        }
    }
    Ok(())
}

/// Explains one file, dispatching on its content: JSON array → Chrome
/// trace, JSON object → report, otherwise a Prometheus exposition.
pub fn explain(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    match JsonValue::parse(&text) {
        Ok(root) => match root.as_array() {
            Some(events) => explain_trace(path, events),
            None => explain_report(path, &root),
        },
        Err(json_err) => explain_exposition(path, &text).map_err(|expo_err| {
            format!("neither JSON ({json_err}) nor Prometheus exposition ({expo_err})")
        }),
    }
}

/// Validates one file without printing tables: JSON must parse, or the
/// content must round-trip through [`pit_trace::parse_exposition`].
/// Prints a one-line `<path>: ok (...)` verdict on success — the CI
/// smoke job points this at live scrape payloads.
pub fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    match JsonValue::parse(&text) {
        Ok(root) => {
            let shape = if root.as_array().is_some() {
                "json array"
            } else {
                "json"
            };
            println!("{path}: ok ({shape})");
            Ok(())
        }
        Err(json_err) => match parse_exposition(&text) {
            Ok(expo) => {
                if expo.render() != text {
                    return Err("exposition does not round-trip through the parser".to_string());
                }
                println!(
                    "{path}: ok (exposition, {} families)",
                    expo.families().len()
                );
                Ok(())
            }
            Err(expo_err) => Err(format!(
                "neither JSON ({json_err}) nor Prometheus exposition ({expo_err})"
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&[("name", Align::Left), ("value", Align::Right)]);
        t.row(vec!["a-long-name".to_string(), "1.5".to_string()]);
        t.row(vec!["b".to_string(), "42".to_string()]);
        let s = t.render("  ");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("  name"));
        assert!(lines[1].ends_with("1.5"));
        assert!(lines[2].ends_with(" 42"));
        // Right-aligned column: all lines end at the same width.
        let w: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert_eq!(w[0], w[1]);
        assert_eq!(w[1], w[2]);
    }

    #[test]
    fn exposition_text_is_explained() {
        let mut e = pit_trace::Exposition::new();
        e.counter("pit_blame_decode_execute_seconds_total", "h", 3.5);
        e.counter("pit_blame_queue_behind_admission_seconds_total", "h", 1.5);
        let mut sk = pit_trace::LatencySketch::new();
        for i in 1..=100 {
            sk.record(i as f64 / 1000.0);
        }
        e.summary("pit_ttft_seconds", "h", &sk, &[0.5, 0.9, 0.95, 0.99]);
        let dir = std::env::temp_dir().join("trace_explain_test_prom");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("METRICS_t.prom");
        std::fs::write(&path, e.render()).expect("write");
        let p = path.to_str().expect("utf8 path");
        explain(p).expect("explains exposition");
        check(p).expect("checks exposition");
    }

    #[test]
    fn check_rejects_garbage() {
        let dir = std::env::temp_dir().join("trace_explain_test_bad");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("garbage.txt");
        std::fs::write(&path, "not json\nnot exposition either {{{").expect("write");
        assert!(check(path.to_str().expect("utf8 path")).is_err());
    }
}
