//! Explains where a serving run's time went.
//!
//! `trace_explain FILE...` reads either a Chrome `TRACE_*.json` export
//! (top-level JSON array, as written by the examples) or a
//! `BENCH_*.json` report (top-level object carrying `blame` summaries)
//! and prints a per-percentile top-cause table: for each latency
//! percentile, which causal category dominates the requests at or above
//! it. Trace mode re-derives attribution from the rendered gap
//! segments — the same exact-tiling discipline as `pit_trace::blame` —
//! so the table agrees with the report's `pit_blame_*` exposition.
//!
//! Exit code is 0 when every input parsed and carried something to
//! explain, 1 otherwise (missing file, bad JSON, no blame data).

use pit_trace::JsonValue;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// The latency percentiles each table reports, highest last.
const PERCENTILES: [f64; 5] = [0.50, 0.90, 0.95, 0.99, 1.00];

fn field<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// One sequence lane reconstructed from a Chrome trace: per-cause
/// seconds (gap segments) summing exactly to its end-to-end span.
#[derive(Default)]
struct Lane {
    by_cause: BTreeMap<String, f64>,
}

impl Lane {
    fn e2e_s(&self) -> f64 {
        self.by_cause.values().sum()
    }
}

/// Nearest-rank quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Prints one percentile × top-cause table from per-request cause maps.
/// Each row aggregates the requests at or above that percentile's
/// latency — the population whose tail the row explains.
fn print_cause_table(label: &str, lanes: &[Lane]) {
    let mut e2es: Vec<f64> = lanes.iter().map(Lane::e2e_s).collect();
    e2es.sort_by(f64::total_cmp);
    println!("  {label} ({} requests):", lanes.len());
    println!(
        "    {:<6} {:>10}  {:<24} {:>6}  {:<24} {:>6}",
        "pct", "e2e_ms", "top cause", "share", "runner-up", "share"
    );
    for &q in &PERCENTILES {
        let cut = quantile(&e2es, q);
        let mut tail: BTreeMap<&str, f64> = BTreeMap::new();
        let mut total = 0.0;
        for lane in lanes.iter().filter(|l| l.e2e_s() >= cut) {
            for (cause, &s) in &lane.by_cause {
                *tail.entry(cause.as_str()).or_default() += s;
                total += s;
            }
        }
        // Deterministic order: seconds descending, then name.
        let mut ranked: Vec<(&str, f64)> = tail.into_iter().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        let share = |s: f64| {
            if total > 0.0 {
                format!("{:>5.1}%", 100.0 * s / total)
            } else {
                "    -".to_string()
            }
        };
        let top = ranked.first().copied().unwrap_or(("-", 0.0));
        let second = ranked.get(1).copied().unwrap_or(("-", 0.0));
        let pct = if q >= 1.0 {
            "max".to_string()
        } else {
            format!("p{:.0}", q * 100.0)
        };
        println!(
            "    {:<6} {:>10.2}  {:<24} {:>6}  {:<24} {:>6}",
            pct,
            cut * 1e3,
            top.0,
            share(top.1),
            second.0,
            share(second.1),
        );
    }
}

/// Explains a Chrome `TRACE_*.json` array: rebuilds each sequence
/// lane's per-cause seconds from its gap segments (pid 1, tids past the
/// fixed device/link lanes; exemplar lanes on other pids are the same
/// requests re-rendered, so they are skipped).
fn explain_trace(path: &str, events: &[JsonValue]) -> Result<(), String> {
    const TID_SEQ_BASE: f64 = 3.0;
    let mut lanes: BTreeMap<u64, Lane> = BTreeMap::new();
    let mut steps = 0usize;
    let mut device_s = 0.0_f64;
    for ev in events {
        let obj = ev.as_object().ok_or("event is not an object")?;
        let ph = field(obj, "ph").and_then(JsonValue::as_str).unwrap_or("");
        if ph != "X" {
            continue;
        }
        let pid = field(obj, "pid").and_then(JsonValue::as_f64).unwrap_or(0.0);
        let tid = field(obj, "tid").and_then(JsonValue::as_f64).unwrap_or(0.0);
        let name = field(obj, "name").and_then(JsonValue::as_str).unwrap_or("");
        let dur_s = field(obj, "dur").and_then(JsonValue::as_f64).unwrap_or(0.0) / 1e6;
        if pid != 1.0 {
            continue;
        }
        if tid == 0.0 && name == "step" {
            steps += 1;
            device_s += dur_s;
            continue;
        }
        if tid < TID_SEQ_BASE {
            continue; // link lanes: transfers, not request wait time
        }
        *lanes
            .entry(tid as u64)
            .or_default()
            .by_cause
            .entry(name.to_string())
            .or_default() += dur_s;
    }
    if lanes.is_empty() {
        return Err("no sequence-lane segments found".to_string());
    }
    println!(
        "{path}: {} requests, {steps} device steps ({:.1} ms busy)",
        lanes.len(),
        device_s * 1e3
    );
    let lanes: Vec<Lane> = lanes.into_values().collect();
    print_cause_table("e2e by percentile", &lanes);
    Ok(())
}

/// Recursively collects every `blame` summary object in a report,
/// remembering the dotted path it sits at.
fn find_blame<'a>(
    prefix: &str,
    v: &'a JsonValue,
    out: &mut Vec<(String, &'a [(String, JsonValue)])>,
) {
    if let Some(obj) = v.as_object() {
        for (k, child) in obj {
            let path = if prefix.is_empty() {
                k.clone()
            } else {
                format!("{prefix}.{k}")
            };
            if k == "blame" {
                if let Some(b) = child.as_object() {
                    if field(b, "causes").is_some() {
                        out.push((path.clone(), b));
                    }
                }
            }
            find_blame(&path, child, out);
        }
    } else if let Some(arr) = v.as_array() {
        for (i, child) in arr.iter().enumerate() {
            find_blame(&format!("{prefix}[{i}]"), child, out);
        }
    }
}

/// Explains a `BENCH_*.json` report: prints each embedded blame
/// summary's cause table (shares and sketch percentiles straight from
/// the report — no re-derivation).
fn explain_report(path: &str, root: &JsonValue) -> Result<(), String> {
    let mut blames = Vec::new();
    find_blame("", root, &mut blames);
    if blames.is_empty() {
        return Err("no blame summaries found (run with tracing enabled)".to_string());
    }
    println!(
        "{path}: {} blame summar{}",
        blames.len(),
        if blames.len() == 1 { "y" } else { "ies" }
    );
    for (at, b) in blames {
        let requests = field(b, "requests")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        let e2e_total = field(b, "e2e_total_s")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        println!(
            "  {at}: {requests:.0} finished, {:.1} ms total end-to-end",
            e2e_total * 1e3
        );
        println!(
            "    {:<24} {:>6} {:>6}  {:>10} {:>10} {:>10}",
            "cause", "e2e%", "ttft%", "p50_ms", "p95_ms", "p99_ms"
        );
        let causes = field(b, "causes")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[]);
        for c in causes {
            let Some(c) = c.as_object() else { continue };
            let get = |k: &str| field(c, k).and_then(JsonValue::as_f64).unwrap_or(0.0);
            println!(
                "    {:<24} {:>5.1}% {:>5.1}%  {:>10.2} {:>10.2} {:>10.2}",
                field(c, "cause").and_then(JsonValue::as_str).unwrap_or("?"),
                100.0 * get("e2e_share"),
                100.0 * get("ttft_share"),
                get("p50_s") * 1e3,
                get("p95_s") * 1e3,
                get("p99_s") * 1e3,
            );
        }
    }
    Ok(())
}

fn explain(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let root = JsonValue::parse(&text).map_err(|e| format!("parse failed: {e}"))?;
    match root.as_array() {
        Some(events) => explain_trace(path, events),
        None => explain_report(path, &root),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: trace_explain <TRACE_*.json | BENCH_*.json>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &args {
        if let Err(e) = explain(path) {
            eprintln!("{path}: {e}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
