//! Explains where a serving run's time went.
//!
//! `trace_explain FILE...` reads a Chrome `TRACE_*.json` export, a
//! `BENCH_*.json` report or a `METRICS_*.prom` Prometheus exposition
//! (including bodies scraped from `pit_trace::ScrapeServer`'s
//! `/metrics`) and prints blame/latency tables — see the library crate
//! for the per-format details.
//!
//! `trace_explain --check FILE...` validates instead of explaining:
//! each file must parse as JSON or round-trip through
//! `pit_trace::parse_exposition`; one `<path>: ok` line per file.
//!
//! Exit code is 0 when every input parsed and carried something to
//! explain (or validate), 1 otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--check");
    if args.is_empty() {
        eprintln!(
            "usage: trace_explain [--check] <TRACE_*.json | BENCH_*.json | METRICS_*.prom>..."
        );
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &args {
        let result = if check_mode {
            trace_explain::check(path)
        } else {
            trace_explain::explain(path)
        };
        if let Err(e) = result {
            eprintln!("{path}: {e}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
