//! Offline stand-in for `criterion` (API-compatible subset of 0.5).
//!
//! The build environment cannot fetch crates.io, so this vendored harness
//! keeps the same bench-authoring surface — `Criterion`, `benchmark_group`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`/`criterion_main!` —
//! but measures with a straightforward wall-clock loop and prints plain-text
//! results instead of producing HTML reports and statistical analysis.
//! `cargo bench` therefore still produces meaningful relative numbers, and
//! `cargo bench --no-run` (the CI gate) exercises the identical bench code.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one bench case: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handed to bench closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup call keeps lazy setup out of the measurement.
        std_black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set how many iterations each bench runs (criterion's sample count is
    /// repurposed directly as the iteration count here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmark `routine` against one `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        self.run(label, |b| routine(b, input));
        self
    }

    /// Benchmark a parameterless routine.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        self.run(label, |b| routine(b));
        self
    }

    /// Close the group (report separator in real criterion; no-op here).
    pub fn finish(self) {}

    fn run<F: FnOnce(&mut Bencher)>(&mut self, label: String, routine: F) {
        let iterations = self.sample_size;
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let mean = bencher
            .elapsed
            .checked_div(iterations as u32)
            .unwrap_or_default();
        self.criterion.report(&label, mean);
    }
}

/// Bench registry/driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmark a standalone function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: 20,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let mean = bencher.elapsed.checked_div(20).unwrap_or_default();
        self.report(&id.to_string(), mean);
        self
    }

    /// Final configuration hook used by `criterion_group!`'s expansion.
    pub fn final_summary(&mut self) {}

    fn report(&mut self, label: &str, mean: Duration) {
        println!("{label:<64} time: [{}]", fmt_time(mean));
    }
}

/// Mirror of `criterion::criterion_group!`: bundles bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Mirror of `criterion::criterion_main!`: emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
