//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the `proptest!` macro over deterministic pseudo-random sampling: each
//! `arg in range` strategy draws uniform values from the vendored `rand`,
//! seeded per test from an FNV hash of the test name. No shrinking and no
//! persistence — a failing case prints its inputs so it can be replayed by
//! hand, which is enough for the invariant suites here.

use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-proptest configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values, mirroring `proptest::strategy::Strategy`
/// (sampling only — no value trees or shrinking).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64, f32, f64);

impl<T: Clone> Strategy for Vec<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(!self.is_empty(), "cannot sample from an empty Vec strategy");
        let i = rand::Rng::gen_range(rng, 0..self.len());
        self[i].clone()
    }
}

/// FNV-1a, used to derive a stable per-test seed from the test name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Mirror of `proptest::proptest!`: expands each property into a `#[test]`
/// that samples its arguments `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!("case {} of ", stringify!($name), ": ", $(stringify!($arg), " = {:?} "),+),
                        case, $(&$arg),+
                    );
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = result {
                        eprintln!("proptest failure at {inputs}");
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),+ ) $body
            )+
        }
    };
}

/// Mirror of `proptest::prop_assert!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirror of `proptest::prop_assert_eq!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

// Re-export for macro hygiene: expansions refer to `$crate::__rand` so user
// crates don't need their own `rand` dependency.
#[doc(hidden)]
pub use rand as __rand;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn samples_stay_in_range(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }
    }

    proptest! {
        #[test]
        fn default_config_variant_compiles(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(crate::fnv1a("pit"), crate::fnv1a("pit"));
        assert_ne!(crate::fnv1a("pit"), crate::fnv1a("tip"));
    }
}
