//! Distributions and uniform-range sampling (subset of `rand::distributions`).

use crate::Rng;

/// Map 64 random bits to a `f64` uniform in `[0, 1)` (53-bit mantissa).
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map 64 random bits to a `f32` uniform in `[0, 1)` (24-bit mantissa).
pub(crate) fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// A distribution over values of type `T`, mirroring
/// `rand::distributions::Distribution`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform `[0, 1)` for floats, full-range
/// uniform for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> f32 {
        unit_f32(rng.next_u64())
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling over ranges (subset of
    //! `rand::distributions::uniform`).

    use super::{unit_f32, unit_f64};
    use crate::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Sample from the half-open range `[low, high)`.
        fn sample_half_open<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Sample from the closed range `[low, high]`.
        fn sample_inclusive<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// Range types usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one uniform sample from the range.
        fn sample_single<R: Rng>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
        fn sample_single<R: Rng>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: Rng>(self, rng: &mut R) -> T {
            let (low, high) = (*self.start(), *self.end());
            assert!(low <= high, "gen_range: empty range");
            T::sample_inclusive(rng, low, high)
        }
    }

    macro_rules! impl_float_uniform {
        ($t:ty, $unit:ident) => {
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng>(rng: &mut R, low: $t, high: $t) -> $t {
                    let u = $unit(rng.next_u64());
                    // `low + u * span` can round up to `high` (e.g. offset
                    // ranges like 1000.0..1000.1 where the span is tiny
                    // relative to ulp(high)); step down to the largest
                    // representable value below `high` in that case.
                    let v = low + u * (high - low);
                    if v >= high {
                        <$t>::max(low, high.next_down())
                    } else {
                        v
                    }
                }
                fn sample_inclusive<R: Rng>(rng: &mut R, low: $t, high: $t) -> $t {
                    // Closed interval: rescale the unit sample from [0, 1)
                    // to [0, 1] so `high` itself is reachable, as in real
                    // rand's inclusive ranges.
                    let max_below_one = 1.0 - <$t>::EPSILON;
                    let u = (<$t>::min($unit(rng.next_u64()), max_below_one)) / max_below_one;
                    let v = low + u * (high - low);
                    <$t>::min(v, high)
                }
            }
        };
    }

    impl_float_uniform!(f32, unit_f32);
    impl_float_uniform!(f64, unit_f64);

    macro_rules! impl_int_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng>(rng: &mut R, low: $t, high: $t) -> $t {
                    let span = (high as u128).wrapping_sub(low as u128) as u128;
                    low.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
                fn sample_inclusive<R: Rng>(rng: &mut R, low: $t, high: $t) -> $t {
                    let span = (high as u128).wrapping_sub(low as u128) + 1;
                    low.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_int_uniform!(usize, u64, u32, u16, u8);

    macro_rules! impl_signed_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng>(rng: &mut R, low: $t, high: $t) -> $t {
                    let span = (high as i128 - low as i128) as u128;
                    (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
                fn sample_inclusive<R: Rng>(rng: &mut R, low: $t, high: $t) -> $t {
                    let span = (high as i128 - low as i128) as u128 + 1;
                    (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_uniform!(isize, i64, i32, i16, i8);
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d = rng.gen_range(1e-9f64..1.0);
            assert!((1e-9..1.0).contains(&d));
            let u = rng.gen_range(0usize..=7);
            assert!(u <= 7);
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
            // Offset range with span far below ulp(high): the half-open
            // contract must still exclude the upper bound.
            let o = rng.gen_range(1000.0f32..1000.1);
            assert!((1000.0..1000.1).contains(&o));
            let w = rng.gen_range(5usize..6);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        use crate::distributions::{Distribution, Standard};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f32 = Distribution::<f32>::sample(&Standard, &mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }
}
