//! Offline stand-in for the `rand` crate (API-compatible subset of rand 0.8).
//!
//! The build environment has no access to crates.io, so this workspace vendors
//! a tiny deterministic implementation of the pieces it actually uses:
//!
//! - [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen_range`] over `Range`/`RangeInclusive` of the common numeric
//!   types, [`Rng::gen_bool`] and [`Rng::gen`]
//! - [`distributions::Standard`] / [`distributions::Distribution`]
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms, which is all the reproduction needs (statistical quality
//! far beyond "good enough for synthetic sparsity masks").

pub mod distributions;
pub mod rngs;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed (via SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core + convenience random methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        distributions::unit_f64(self.next_u64()) < p
    }

    /// Sample a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }
}
