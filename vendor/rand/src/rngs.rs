//! RNG implementations. Only [`StdRng`] is provided.

use crate::{Rng, SeedableRng};

/// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
///
/// Unlike the real `StdRng` (which is explicitly not reproducible across rand
/// versions), this one is stable forever — masks and workloads generated from
/// a seed never change under dependency bumps.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
