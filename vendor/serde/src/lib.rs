//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides just enough of serde's surface for the workspace to compile:
//! a marker [`Serialize`] trait and the `#[derive(Serialize)]` macro
//! (re-exported from the vendored `serde_derive`, which expands to a plain
//! `impl Serialize`). No actual serialization machinery is included — the
//! gpusim stats types only *tag* themselves serializable today; a future PR
//! that needs real JSON output should grow this crate or swap in the real one.

/// Marker trait standing in for `serde::Serialize`.
///
/// Deliberately method-free: deriving it costs nothing and downstream code
/// can use it as a bound without pulling in serialization plumbing.
pub trait Serialize {}

pub use serde_derive::Serialize;

// Cover the primitives and std containers a derived impl's fields might
// require if `Serialize` is ever used as a bound.
macro_rules! impl_serialize {
    ($($t:ty),*) => {$( impl Serialize for $t {} )*};
}

impl_serialize!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl Serialize for &str {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for &T {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
