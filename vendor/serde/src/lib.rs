//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the slice of serde's surface the workspace uses: a
//! [`Serialize`] trait that renders JSON directly into a `String`, and the
//! `#[derive(Serialize)]` macro (re-exported from the vendored
//! `serde_derive`, which expands to a field-wise [`Serialize::json`] impl
//! for named-field structs). There is no `Serializer` abstraction, no
//! `Deserialize`, and no formatting options — one canonical JSON encoding
//! is all the workspace's `to_json()` report paths need.

// Lets the derive's generated `::serde::...` paths resolve inside this
// crate too (the in-crate unit tests derive `Serialize`).
extern crate self as serde;

use std::fmt::Write as _;

/// JSON serialization, stand-in for `serde::Serialize`.
///
/// Implementors append their canonical JSON encoding to `out`; the
/// provided [`Serialize::to_json`] wraps that into a fresh `String`.
pub trait Serialize {
    /// Appends `self`'s JSON encoding to `out`.
    fn json(&self, out: &mut String);

    /// `self` as a JSON document.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.json(&mut out);
        out
    }
}

pub use serde_derive::Serialize;

/// Appends `s` as a JSON string literal (quoted, `"`/`\`/control
/// characters escaped). Public because the derive macro's expansion and
/// map-key encoding call it.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json(&self, out: &mut String) {
                // JSON has no NaN/Infinity; null is the conventional spelling.
                if self.is_finite() {
                    let _ = write!(out, "{self}");
                } else {
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for char {
    fn json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_json_str(out, self.encode_utf8(&mut buf));
    }
}

impl Serialize for str {
    fn json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl Serialize for String {
    fn json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json(&self, out: &mut String) {
        match self {
            Some(v) => v.json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json(&self, out: &mut String) {
        (**self).json(out);
    }
}

fn json_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn json(&self, out: &mut String) {
        json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json(&self, out: &mut String) {
        json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json(&self, out: &mut String) {
        json_seq(self.iter(), out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn json(&self, out: &mut String) {
        out.push('[');
        self.0.json(out);
        out.push(',');
        self.1.json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn json(&self, out: &mut String) {
        out.push('[');
        self.0.json(out);
        out.push(',');
        self.1.json(out);
        out.push(',');
        self.2.json(out);
        out.push(']');
    }
}

/// JSON object keys must be strings: a key that already encodes to a
/// string literal is used as-is, anything else (numbers, bools) gets its
/// JSON wrapped in quotes — serde_json's map-key convention.
fn json_key<K: Serialize>(key: &K, out: &mut String) {
    let encoded = key.to_json();
    if encoded.starts_with('"') {
        out.push_str(&encoded);
    } else {
        write_json_str(out, &encoded);
    }
}

fn json_map<'a, K, V>(entries: impl Iterator<Item = (&'a K, &'a V)>, out: &mut String)
where
    K: Serialize + 'a,
    V: Serialize + 'a,
{
    // Sort by encoded key: deterministic output regardless of the map's
    // iteration order (HashMap's is seeded per-process).
    let mut rendered: Vec<(String, &'a V)> = entries
        .map(|(k, v)| {
            let mut s = String::new();
            json_key(k, &mut s);
            (s, v)
        })
        .collect();
    rendered.sort_by(|a, b| a.0.cmp(&b.0));
    out.push('{');
    for (i, (k, v)) in rendered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push(':');
        v.json(out);
    }
    out.push('}');
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn json(&self, out: &mut String) {
        json_map(self.iter(), out);
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn json(&self, out: &mut String) {
        json_map(self.iter(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        assert_eq!(42u32.to_json(), "42");
        assert_eq!((-7i64).to_json(), "-7");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(true.to_json(), "true");
        assert_eq!("a\"b\\c\nd".to_json(), r#""a\"b\\c\nd""#);
        assert_eq!('x'.to_json(), "\"x\"");
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u8, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Some(5usize).to_json(), "5");
        assert_eq!(None::<usize>.to_json(), "null");
        assert_eq!((1u8, "two").to_json(), "[1,\"two\"]");
        let mut m = std::collections::BTreeMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        assert_eq!(m.to_json(), r#"{"a":1,"b":2}"#);
        let mut n = std::collections::HashMap::new();
        n.insert(10u32, true);
        assert_eq!(n.to_json(), r#"{"10":true}"#);
    }

    #[test]
    fn derived_struct_emits_fields_in_order() {
        #[derive(Serialize)]
        struct Report {
            name: &'static str,
            count: usize,
            rate: f64,
            nested: Option<Vec<u32>>,
        }
        let r = Report {
            name: "run",
            count: 3,
            rate: 0.5,
            nested: Some(vec![1, 2]),
        };
        assert_eq!(
            r.to_json(),
            r#"{"name":"run","count":3,"rate":0.5,"nested":[1,2]}"#
        );
    }

    #[test]
    fn derived_enum_falls_back_to_debug_string() {
        // The field is only read through the derived `Debug` fallback,
        // which dead-code analysis deliberately ignores.
        #[allow(dead_code)]
        #[derive(Debug, Serialize)]
        enum Mode {
            Fast,
            Careful { retries: usize },
        }
        assert_eq!(Mode::Fast.to_json(), "\"Fast\"");
        assert_eq!(
            Mode::Careful { retries: 2 }.to_json(),
            "\"Careful { retries: 2 }\""
        );
    }

    #[test]
    fn derived_tuple_and_unit_structs() {
        #[derive(Serialize)]
        struct Pair(u32, bool);
        #[derive(Serialize)]
        struct Nothing;
        assert_eq!(Pair(7, false).to_json(), "[7,false]");
        assert_eq!(Nothing.to_json(), "null");
    }
}
