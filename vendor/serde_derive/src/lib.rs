//! Hand-rolled `#[derive(Serialize)]` with zero dependencies (no syn/quote —
//! the build environment is offline). For a non-generic named-field struct
//! it expands to a field-wise JSON `impl serde::Serialize`, emitting the
//! fields in declaration order; tuple structs become JSON arrays, unit
//! structs `null`, and enums fall back to their `Debug` rendering as a
//! JSON string (every workspace enum that derives `Serialize` also derives
//! `Debug`). Generic types expand to nothing — no workspace type needs a
//! generic impl, and mis-handling bounds would be worse than skipping.
//!
//! Known parsing limits (fine for this workspace): a field whose type
//! contains a bare `->` outside a group (fn-pointer types) would confuse
//! the angle-bracket depth tracking, and `where` clauses are not handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Scan past attributes (`#[...]`), visibility and modifiers until the
    // `struct`/`enum`/`union` keyword, whose next ident is the type name.
    let mut kind = None;
    let mut name = None;
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = tree {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(ty)) = tokens.next() {
                    name = Some(ty.to_string());
                }
                kind = Some(word);
                break;
            }
        }
    }

    let (Some(kind), Some(name)) = (kind, name) else {
        return TokenStream::new();
    };

    // Generic type: skip the impl rather than mis-handle bounds.
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return TokenStream::new();
    }

    let body = match kind.as_str() {
        // Unions have no safe field reads and no Debug; skip entirely.
        "union" => return TokenStream::new(),
        "enum" => r#"::serde::write_json_str(out, &::std::format!("{:?}", self));"#.to_string(),
        _ => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                named_body(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                tuple_body(g.stream())
            }
            // Unit struct (`struct Name;`): serde's convention is null.
            _ => r#"out.push_str("null");"#.to_string(),
        },
    };

    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn json(&self, out: &mut ::std::string::String) {{ {body} }} \
         }}"
    )
    .parse()
    .expect("generated impl must parse")
}

/// Field names of a named-field struct body, in declaration order.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip field attributes.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next(); // '#'
            iter.next(); // the bracketed attribute group
        }
        // Skip visibility (`pub`, `pub(crate)`, `pub(in ...)`).
        if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        let Some(TokenTree::Ident(field)) = iter.next() else {
            break;
        };
        fields.push(field.to_string());
        // Skip `: Type` to the next top-level comma. Groups hide their
        // inner commas; only generic angle brackets need depth tracking.
        let mut depth = 0i32;
        for t in iter.by_ref() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// `json` body for a named-field struct: a JSON object with the fields in
/// declaration order.
fn named_body(stream: TokenStream) -> String {
    let fields = named_fields(stream);
    if fields.is_empty() {
        return r#"out.push_str("{}");"#.to_string();
    }
    let mut body = String::new();
    for (i, f) in fields.iter().enumerate() {
        let sep = if i == 0 { '{' } else { ',' };
        body.push_str(&format!(
            "out.push('{sep}'); \
             ::serde::write_json_str(out, \"{f}\"); \
             out.push(':'); \
             ::serde::Serialize::json(&self.{f}, out); "
        ));
    }
    body.push_str("out.push('}');");
    body
}

/// `json` body for a tuple struct: a JSON array of the fields in order.
fn tuple_body(stream: TokenStream) -> String {
    // Count top-level commas (+1 for a trailing unterminated field).
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut pending = false;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => {
                    depth += 1;
                    pending = true;
                    continue;
                }
                '>' => {
                    depth -= 1;
                    pending = true;
                    continue;
                }
                ',' if depth == 0 => {
                    count += 1;
                    pending = false;
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    if count == 0 {
        return r#"out.push_str("null");"#.to_string();
    }
    let mut body = String::from("out.push('[');");
    for i in 0..count {
        if i > 0 {
            body.push_str("out.push(',');");
        }
        body.push_str(&format!("::serde::Serialize::json(&self.{i}, out);"));
    }
    body.push_str("out.push(']');");
    body
}
