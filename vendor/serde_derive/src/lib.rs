//! Hand-rolled `#[derive(Serialize)]` with zero dependencies (no syn/quote —
//! the build environment is offline). Emits `impl serde::Serialize for T {}`
//! for non-generic types; for generic types it expands to nothing, which is
//! fine because the stub trait is a marker and nothing in the workspace
//! requires the impl to exist.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Scan past attributes (`#[...]`), visibility and modifiers until the
    // `struct`/`enum`/`union` keyword, whose next ident is the type name.
    let mut name = None;
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = tree {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(ty)) = tokens.next() {
                    name = Some(ty.to_string());
                }
                break;
            }
        }
    }

    let Some(name) = name else {
        return TokenStream::new();
    };

    // Generic type: skip the impl rather than mis-handle bounds.
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return TokenStream::new();
    }

    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
